package exec

import (
	"fmt"
	"sort"
	"testing"

	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
)

// refTopN is the specification TopN must match: a stable sort on the
// column followed by truncation to n rows.
func refTopN(rows []storage.Record, col int, desc bool, n int) []storage.Record {
	out := make([]storage.Record, len(rows))
	copy(out, rows)
	sort.SliceStable(out, func(a, b int) bool {
		c := out[a][col].Compare(out[b][col])
		if desc {
			return c > 0
		}
		return c < 0
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// keyedRows builds two-column records (key, unique marker) so tests can
// detect any deviation from stable ordering among duplicate keys.
func keyedRows(keys ...int64) []storage.Record {
	out := make([]storage.Record, len(keys))
	for i, k := range keys {
		out[i] = storage.Record{sqlparse.IntValue(k), sqlparse.IntValue(int64(i))}
	}
	return out
}

func recordsEqual(a, b []storage.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if !a[i][j].Equal(b[i][j]) {
				return false
			}
		}
	}
	return true
}

// TopN must be indistinguishable from stable-sort-then-truncate for
// every n, in both directions, including duplicate sort keys.
func TestTopNMatchesStableSortTruncate(t *testing.T) {
	rows := keyedRows(5, 2, 9, 2, 7, 5, 1, 9, 2, 4)
	for _, desc := range []bool{false, true} {
		for n := 0; n <= len(rows)+2; n++ {
			src := &rowSource{rows: rows}
			op := NewTopN(src, 0, desc, n, fmt.Sprintf("Top-N sort: k (limit %d)", n))
			got := drainAll(t, op)
			want := refTopN(rows, 0, desc, n)
			if !recordsEqual(got, want) {
				t.Errorf("desc=%v n=%d: got %v, want %v", desc, n, got, want)
			}
			if !src.closed {
				t.Errorf("desc=%v n=%d: input not closed", desc, n)
			}
		}
	}
}

// Even with n = 0, TopN must drain its input to exhaustion: the scan
// leaves below have already fetched their pages, and the examined-rows
// accounting must not depend on the limit.
func TestTopNZeroDrainsInput(t *testing.T) {
	src := &rowSource{rows: intRows(3, 1, 2)}
	op := NewTopN(src, 0, false, 0, "Top-N sort: k (limit 0)")
	out := drainAll(t, op)
	if len(out) != 0 {
		t.Fatalf("emitted %d rows, want 0", len(out))
	}
	if src.pos != 3 {
		t.Errorf("pulled %d input rows, want all 3", src.pos)
	}
	st := op.Stats()
	if st.RowsExamined != 3 || st.RowsReturned != 0 {
		t.Errorf("stats = %+v, want 3 examined / 0 returned", st)
	}
}

func TestTopNStats(t *testing.T) {
	op := NewTopN(&rowSource{rows: intRows(4, 1, 3, 2, 5)}, 0, false, 2, "Top-N sort: k (limit 2)")
	out := drainAll(t, op)
	if len(out) != 2 || out[0][0].Int != 1 || out[1][0].Int != 2 {
		t.Fatalf("top-2 = %v, want [1 2]", out)
	}
	st := op.Stats()
	if st.RowsExamined != 5 || st.RowsReturned != 2 {
		t.Errorf("stats = %+v, want 5 examined / 2 returned", st)
	}
}

// benchRows builds count single-column records whose keys are a
// deterministic pseudo-shuffle (LCG) of 0..count-1.
func benchRows(count int) []storage.Record {
	out := make([]storage.Record, count)
	state := int64(42)
	for i := range out {
		state = (state*1103515245 + 12345) % (1 << 31)
		out[i] = storage.Record{sqlparse.IntValue(state % int64(count))}
	}
	return out
}

// BenchmarkTopN pits the bounded-heap TopN against the Sort+Limit stack
// it replaces on the workload the planner folds: 10k rows, LIMIT 10.
// TopN does O(rows · log n) comparisons and retains O(n) rows; the Sort
// stack does O(rows · log rows) and retains everything.
func BenchmarkTopN(b *testing.B) {
	rows := benchRows(10000)
	const n = 10
	b.Run("TopN", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			op := NewTopN(&rowSource{rows: rows}, 0, false, n, "Top-N")
			if err := op.Open(); err != nil {
				b.Fatal(err)
			}
			for {
				_, ok, err := op.Next()
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					break
				}
			}
			op.Close()
		}
	})
	b.Run("SortLimit", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			op := NewLimit(NewSort(&rowSource{rows: rows}, 0, false, "Sort"), n, "Limit")
			if err := op.Open(); err != nil {
				b.Fatal(err)
			}
			for {
				_, ok, err := op.Next()
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					break
				}
			}
			op.Close()
		}
	})
}
