package exec

import (
	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
)

// MVCC visibility hooks. Under snapshot isolation a scan must not emit
// what the tree currently holds but what the statement's read view is
// entitled to see. The engine side (the version store) makes that
// decision; the operators only need two mechanical capabilities:
//
//   - substitute or suppress a visited row (the tree row belongs to a
//     newer transaction: emit the view's version instead, or nothing
//     when the row did not exist in the view), and
//   - merge "ghost" rows into the scan output (rows deleted from the
//     tree whose old versions are still visible to the view).
//
// Both run inside the leaf so every operator above — filter, sort,
// aggregate, lookup — works on view-consistent rows without knowing
// MVCC exists. RowsExamined still counts physical tree rows visited
// (pre-filter), matching the legacy semantics; ghosts are merged after
// the traversal and are not "examined".

// Visibility carries a leaf's view-resolution hooks. The zero value
// (and a nil pointer) means "current read": emit tree rows as-is.
type Visibility struct {
	// Resolve maps a visited tree row (or index entry) to the version
	// the view sees: (row, true) to emit, (_, false) to suppress. Nil
	// keeps every row.
	Resolve func(r storage.Record) (storage.Record, bool)

	// Ghosts are records visible to the view but absent from the tree,
	// already restricted to the scan's bounds and sorted by their key
	// (element 0). The leaf merges them into its buffer in key order
	// after the traversal.
	Ghosts []storage.Record
}

// SetVisibility arms the view-resolution hooks on this leaf. Must be
// called before Open; nil (the default) keeps the scan a current read.
func (s *scanBase) SetVisibility(v *Visibility) { s.vis = v }

// resolveVisit applies the armed resolver to a visited row. Called by
// visit after the row is counted as examined.
func (s *scanBase) resolveVisit(r storage.Record) (storage.Record, bool) {
	if s.vis == nil || s.vis.Resolve == nil {
		return r, true
	}
	return s.vis.Resolve(r)
}

// mergeGhosts folds the view's ghost records into the buffered rows by
// key order. Both inputs are sorted ascending by element 0 (the
// traversal emits key order; the engine sorts the ghosts), so this is
// a linear merge. Runs at the end of Open, before reverse().
func (s *scanBase) mergeGhosts() {
	if s.vis == nil || len(s.vis.Ghosts) == 0 {
		return
	}
	ghosts := s.vis.Ghosts
	merged := make([]storage.Record, 0, len(s.buf)+len(ghosts))
	i, j := 0, 0
	for i < len(s.buf) && j < len(ghosts) {
		if s.buf[i][0].Compare(ghosts[j][0]) <= 0 {
			merged = append(merged, s.buf[i])
			i++
		} else {
			merged = append(merged, ghosts[j])
			j++
		}
	}
	merged = append(merged, s.buf[i:]...)
	merged = append(merged, ghosts[j:]...)
	s.buf = merged
}

// LookupResolver intercepts a KeyLookup's clustered search: given the
// primary key of an index entry, it returns the view's version of the
// row and true when the version store already holds the visible row
// (the tree may not even contain the key — a ghost entry's row was
// deleted). Returning false falls through to the normal tree search.
type LookupResolver func(pk sqlparse.Value) (storage.Record, bool)

// SetLookupResolver arms the view resolver on this lookup. Must be
// called before Open; nil (the default) searches the clustered tree
// for every entry.
func (k *KeyLookup) SetLookupResolver(lr LookupResolver) { k.resolver = lr }
