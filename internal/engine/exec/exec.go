// Package exec implements the engine's physical query operators: the
// Volcano-style iterator layer that internal/engine's statement drivers
// assemble into trees. Each operator implements Open/Next/Close, so a
// plan executes by pulling rows through the root; EXPLAIN renders the
// same tree via Describe/Children, and per-operator runtime counters
// (Stats) feed performance_schema's events_stages surface.
//
// One property is load-bearing for the paper's experiments: the scan
// leaves fetch buffer-pool pages in exactly the order the pre-operator
// monolithic scan loop did. Leaves therefore run their full B+ tree
// traversal at Open (materializing matches is how the legacy loop
// worked too), and operators above them never trigger page fetches —
// so a Limit or an error above a scan cannot perturb the buffer-pool
// LRU order, access counters, or dump file that the forensic
// experiments measure. The engine's differential tests replay
// randomized workloads through both executors and diff the fetch
// traces byte for byte.
package exec

import (
	"errors"

	"snapdb/internal/storage"
)

// Stats holds one operator's runtime counters for a single execution.
// RowsExamined counts rows (or index entries) the operator inspected,
// RowsReturned counts rows it emitted, and PoolFetches counts the
// buffer-pool page fetches its own work triggered (leaves and key
// lookups only; pure row-at-a-time operators never touch pages).
type Stats struct {
	RowsExamined int
	RowsReturned int
	PoolFetches  uint64
}

// FetchCounter samples the engine's cumulative buffer-pool fetch count.
// Operators that fetch pages sample it around their tree traversals to
// attribute fetches per operator. A nil FetchCounter disables the
// attribution (counters stay zero); under concurrent sessions the
// attribution is approximate, like any shared-counter delta.
type FetchCounter func() uint64

// Operator is one node of a physical plan: a pull-based iterator.
//
// The contract mirrors the classic Volcano model: Open prepares the
// operator (blocking operators do their work here), Next returns the
// next row with ok=false at end of stream, and Close releases state.
// Describe returns the precomputed one-line form EXPLAIN prints, and
// Children returns the inputs in plan order.
type Operator interface {
	Open() error
	Next() (storage.Record, bool, error)
	Close() error
	Describe() string
	Stats() Stats
	Children() []Operator
}

// ErrUnsupportedAggregate reports an aggregate kind the executor has no
// implementation for. The parser rejects unknown aggregate functions
// outright, so reaching this error requires a hand-built plan; it is
// typed so callers can distinguish "not implemented" from data errors.
var ErrUnsupportedAggregate = errors.New("unsupported aggregate")

// DeadlineCheck reports whether the running statement has exceeded its
// deadline: nil to keep going, a typed error (engine.ErrStatementTimeout
// wrapped with context) to abort. Scan leaves call it at row boundaries
// during their Open-time traversal — the only long-running loops in the
// tree — so a statement that never times out fetches exactly the pages
// it always fetched, and one that does stops mid-traversal before the
// mutation half of UPDATE/DELETE can start.
type DeadlineCheck func() error

// deadlineCheckInterval is how many examined rows pass between deadline
// checks: frequent enough to bound a runaway scan in microseconds of
// overshoot, sparse enough to keep the clock read off the per-row path.
const deadlineCheckInterval = 64

// sampleFetches reads fc, tolerating nil.
func sampleFetches(fc FetchCounter) uint64 {
	if fc == nil {
		return 0
	}
	return fc()
}
