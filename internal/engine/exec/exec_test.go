package exec

import (
	"errors"
	"testing"

	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
)

// rowSource is a stub leaf feeding fixed rows to the operator under
// test, tracking Open/Close so tests can assert the iterator contract.
type rowSource struct {
	rows   []storage.Record
	pos    int
	opened bool
	closed bool
}

func (s *rowSource) Open() error { s.opened = true; return nil }
func (s *rowSource) Next() (storage.Record, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}
func (s *rowSource) Close() error         { s.closed = true; return nil }
func (s *rowSource) Describe() string     { return "stub source" }
func (s *rowSource) Stats() Stats         { return Stats{} }
func (s *rowSource) Children() []Operator { return nil }

func intRows(vals ...int64) []storage.Record {
	out := make([]storage.Record, len(vals))
	for i, v := range vals {
		out[i] = storage.Record{sqlparse.IntValue(v)}
	}
	return out
}

func drainAll(t *testing.T, op Operator) []storage.Record {
	t.Helper()
	if err := op.Open(); err != nil {
		t.Fatalf("Open: %v", err)
	}
	var out []storage.Record
	for {
		r, ok, err := op.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			break
		}
		out = append(out, r)
	}
	if err := op.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return out
}

func TestLimitStopsAtN(t *testing.T) {
	src := &rowSource{rows: intRows(1, 2, 3, 4, 5)}
	l := NewLimit(src, 3, "Limit: 3")
	out := drainAll(t, l)
	if len(out) != 3 {
		t.Fatalf("emitted %d rows, want 3", len(out))
	}
	for i, want := range []int64{1, 2, 3} {
		if out[i][0].Int != want {
			t.Errorf("row %d = %d, want %d", i, out[i][0].Int, want)
		}
	}
	// Once satisfied, Limit must not pull its input again.
	if src.pos != 3 {
		t.Errorf("limit pulled %d input rows, want exactly 3", src.pos)
	}
	st := l.Stats()
	if st.RowsExamined != 3 || st.RowsReturned != 3 {
		t.Errorf("stats = %+v, want 3 examined / 3 returned", st)
	}
	if !src.closed {
		t.Error("input was not closed")
	}
}

func TestLimitLargerThanInput(t *testing.T) {
	l := NewLimit(&rowSource{rows: intRows(7, 8)}, 10, "Limit: 10")
	if got := drainAll(t, l); len(got) != 2 {
		t.Fatalf("emitted %d rows, want 2", len(got))
	}
}

func TestLimitZeroRows(t *testing.T) {
	src := &rowSource{rows: intRows(1, 2)}
	l := NewLimit(src, 0, "Limit: 0")
	if got := drainAll(t, l); len(got) != 0 {
		t.Fatalf("emitted %d rows, want 0", len(got))
	}
	if src.pos != 0 {
		t.Errorf("limit 0 pulled %d input rows, want 0", src.pos)
	}
}

func TestFilterCountsExaminedAndReturned(t *testing.T) {
	src := &rowSource{rows: intRows(1, 5, 3, 9, 2)}
	f := NewFilter(src, []Pred{{Col: 0, Op: sqlparse.OpGe, Arg: sqlparse.IntValue(3)}}, "Filter: x >= 3")
	out := drainAll(t, f)
	if len(out) != 3 {
		t.Fatalf("emitted %d rows, want 3", len(out))
	}
	st := f.Stats()
	if st.RowsExamined != 5 || st.RowsReturned != 3 {
		t.Errorf("stats = %+v, want 5 examined / 3 returned", st)
	}
}

func TestSortStableOrdering(t *testing.T) {
	src := &rowSource{rows: []storage.Record{
		{sqlparse.IntValue(2), sqlparse.StrValue("b")},
		{sqlparse.IntValue(1), sqlparse.StrValue("a")},
		{sqlparse.IntValue(2), sqlparse.StrValue("a")}, // ties keep input order
	}}
	s := NewSort(src, 0, false, "Sort: k ASC")
	out := drainAll(t, s)
	got := ""
	for _, r := range out {
		got += r[1].Str
	}
	if got != "aba" {
		t.Errorf("sorted order = %q, want %q (stable ascending on col 0)", got, "aba")
	}

	desc := NewSort(&rowSource{rows: intRows(1, 3, 2)}, 0, true, "Sort: k DESC")
	out = drainAll(t, desc)
	if out[0][0].Int != 3 || out[2][0].Int != 1 {
		t.Errorf("descending sort wrong: %v", out)
	}
}

func TestAggregateCountAndSum(t *testing.T) {
	c := NewAggregate(&rowSource{rows: intRows(4, 5, 6)}, sqlparse.AggCount, -1, "Aggregate: COUNT(*)")
	out := drainAll(t, c)
	if len(out) != 1 || out[0][0].Int != 3 {
		t.Fatalf("COUNT = %v, want single row 3", out)
	}
	s := NewAggregate(&rowSource{rows: intRows(4, 5, 6)}, sqlparse.AggSum, 0, "Aggregate: SUM(x)")
	out = drainAll(t, s)
	if len(out) != 1 || out[0][0].Int != 15 {
		t.Fatalf("SUM = %v, want single row 15", out)
	}
}

func TestAggregateUnsupportedKind(t *testing.T) {
	a := NewAggregate(&rowSource{}, sqlparse.AggKind(99), 0, "Aggregate: ?")
	err := a.Open()
	if err == nil {
		t.Fatal("Open accepted an unsupported aggregate kind")
	}
	if !errors.Is(err, ErrUnsupportedAggregate) {
		t.Errorf("error %v is not ErrUnsupportedAggregate", err)
	}
}

func TestProjectEmitsFreshRecords(t *testing.T) {
	base := storage.Record{sqlparse.IntValue(1), sqlparse.StrValue("x"), sqlparse.IntValue(9)}
	p := NewProject(&rowSource{rows: []storage.Record{base}}, []int{2, 0}, "Project: c, a")
	out := drainAll(t, p)
	if len(out) != 1 || len(out[0]) != 2 || out[0][0].Int != 9 || out[0][1].Int != 1 {
		t.Fatalf("projection = %v", out)
	}
	// Mutating the projected row must not alias the source record.
	out[0][0] = sqlparse.IntValue(42)
	if base[2].Int != 9 {
		t.Error("projected record aliases the scan buffer")
	}
}
