package exec

import (
	"sync"
	"time"

	"snapdb/internal/btree"
	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
)

// Parallel partitioned scans. The planner splits one clustered
// full/range scan into K disjoint key ranges; each PartitionScan runs
// its B+ tree traversal on a worker goroutine, batching rows into a
// bounded channel, and the ParallelScan parent merges the partitions
// back *in partition order* during its Open. Because the partitions
// are consecutive key ranges of the same ascending traversal, the
// merged buffer is byte-identical to the serial scan's — same rows,
// same order, same examined count — which is what lets the engine's
// differential tests diff parallel-on against parallel-off runs.
//
// What is NOT preserved is the buffer-pool fetch interleaving: workers
// fetch their partitions' pages concurrently, so the global fetch
// trace scrambles run to run. That is a leakage-profile change, not an
// implementation detail — experiment E15 measures it — and it is why
// per-partition fetch attribution is impossible with a shared counter:
// the parent samples the engine's cumulative fetch count around the
// whole parallel phase instead, and the partitions report zero.

// scanBatchSize is how many rows a partition worker accumulates before
// handing a batch to the merge: large enough to amortize the channel
// transfer, small enough to keep workers from stalling on a slow
// consumer.
const scanBatchSize = 128

// scanIOInterval is how many examined rows pass between simulated-IO
// waits (Config.SimulatedScanIOWait): one wait per "page batch", the
// granularity a real device pays latency at. Shared by the serial
// leaves and the partition workers so serial-vs-parallel comparisons
// model the same device.
const scanIOInterval = 2048

// PartitionScan is one worker's slice of a parallel scan: the rows of
// the clustered tree with keys in [lo, hi]. It never runs on the
// statement goroutine — ParallelScan.Open spawns run() on a worker —
// and it participates in the Operator interface only for the
// introspection half (Describe/Stats/Children feed EXPLAIN and the
// events_stages surface); the iterator half is served by the parent
// out of the merged buffer.
type PartitionScan struct {
	tree   *btree.Tree
	lo, hi sqlparse.Value
	desc   string

	dl     DeadlineCheck
	ioWait time.Duration

	ch      chan []storage.Record
	done    <-chan struct{}
	batch   []storage.Record
	aborted bool
	err     error // set before ch closes; read only after ch closes
	stats   Stats
}

// Init prepares the partition for one execution.
func (p *PartitionScan) Init(tree *btree.Tree, lo, hi sqlparse.Value, desc string) {
	*p = PartitionScan{tree: tree, lo: lo, hi: hi, desc: desc}
}

// Open, Next and Close satisfy Operator but are never driven: the
// parent merge owns the partition's lifecycle.
func (p *PartitionScan) Open() error                         { return nil }
func (p *PartitionScan) Next() (storage.Record, bool, error) { return nil, false, nil }
func (p *PartitionScan) Close() error                        { return nil }
func (p *PartitionScan) Describe() string                    { return p.desc }
func (p *PartitionScan) Stats() Stats                        { return p.stats }
func (p *PartitionScan) Children() []Operator                { return nil }
func (p *PartitionScan) SetDeadlineCheck(dc DeadlineCheck)   { p.dl = dc }
func (p *PartitionScan) SetSimulatedIOWait(d time.Duration)  { p.ioWait = d }

// visit is the worker-side traversal callback: count, batch, and hand
// full batches to the merge. Sends select against the parent's done
// channel so an abort (error elsewhere, early Close) can never leave a
// worker blocked on a full channel.
func (p *PartitionScan) visit(r storage.Record) bool {
	p.stats.RowsExamined++
	if p.dl != nil && p.stats.RowsExamined%deadlineCheckInterval == 0 {
		if err := p.dl(); err != nil {
			p.err = err
			return false
		}
	}
	if p.ioWait > 0 && p.stats.RowsExamined%scanIOInterval == 0 {
		time.Sleep(p.ioWait)
	}
	p.batch = append(p.batch, r)
	p.stats.RowsReturned++
	if len(p.batch) >= scanBatchSize {
		if !p.send() {
			return false
		}
	}
	return true
}

// send hands the accumulated batch to the merge, reporting false on
// abort.
func (p *PartitionScan) send() bool {
	select {
	case p.ch <- p.batch:
		p.batch = nil
		return true
	case <-p.done:
		p.aborted = true
		return false
	}
}

// run is the worker body: traverse the partition's range, flush the
// tail batch, close the channel. The channel close is the
// happens-before edge that publishes err and stats to the merge.
func (p *PartitionScan) run() {
	defer close(p.ch)
	if err := p.tree.Range(p.lo, p.hi, p.visit); err != nil && p.err == nil {
		p.err = err
	}
	if p.err != nil || p.aborted {
		return
	}
	if len(p.batch) > 0 {
		p.send()
	}
}

// ParallelScan fans one clustered scan out over per-range partition
// workers and merges their batches back in partition (= key) order.
// Like every scan leaf it is blocking: Open runs the whole parallel
// phase and buffers the merged rows, so operators above it can never
// perturb which pages get fetched — an early LIMIT or an error above
// the leaf stops the *emission*, not the traversal, exactly as with
// the serial leaves.
type ParallelScan struct {
	desc  string
	parts []PartitionScan
	fc    FetchCounter

	done    chan struct{}
	wg      sync.WaitGroup
	spawned bool
	closed  bool

	buf   []storage.Record
	pos   int
	stats Stats
}

// Init prepares the merge over its partitions. rowEstimate (the live
// table/range row count) sizes each partition's batch channel so that
// in the common balanced case no worker ever stalls waiting for the
// in-order merge to reach it — bounded by the scan's own size, which
// is the memory a serial blocking leaf would buffer anyway.
func (p *ParallelScan) Init(desc string, parts []PartitionScan, rowEstimate int64, fc FetchCounter) {
	*p = ParallelScan{desc: desc, parts: parts, fc: fc}
	chanCap := int(rowEstimate/scanBatchSize) + 2
	if chanCap < 1 {
		chanCap = 1
	}
	p.done = make(chan struct{})
	for i := range p.parts {
		p.parts[i].ch = make(chan []storage.Record, chanCap)
		p.parts[i].done = p.done
	}
}

// SetDeadlineCheck arms the statement deadline on every partition: the
// workers call it at row boundaries, so a timeout cancels the whole
// fan-out promptly, not just the goroutine that dispatched it.
func (p *ParallelScan) SetDeadlineCheck(dc DeadlineCheck) {
	for i := range p.parts {
		p.parts[i].SetDeadlineCheck(dc)
	}
}

// SetSimulatedIOWait arms the modeled per-page-batch device latency on
// every partition (see Config.SimulatedScanIOWait).
func (p *ParallelScan) SetSimulatedIOWait(d time.Duration) {
	for i := range p.parts {
		p.parts[i].SetSimulatedIOWait(d)
	}
}

// Open spawns the partition workers and merges their batches in
// partition order into the leaf buffer. It returns only when every
// worker has finished (or been cancelled), so the statement goroutine
// never races a live worker afterwards.
func (p *ParallelScan) Open() error {
	before := sampleFetches(p.fc)
	p.spawned = true
	p.wg.Add(len(p.parts))
	for i := range p.parts {
		go func(ps *PartitionScan) {
			defer p.wg.Done()
			ps.run()
		}(&p.parts[i])
	}
	var firstErr error
	for i := range p.parts {
		if firstErr != nil {
			break
		}
		for batch := range p.parts[i].ch {
			p.buf = append(p.buf, batch...)
		}
		if err := p.parts[i].err; err != nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		p.abort()
		p.stats.PoolFetches += sampleFetches(p.fc) - before
		return firstErr
	}
	p.wg.Wait()
	p.stats.PoolFetches += sampleFetches(p.fc) - before
	return nil
}

// abort cancels outstanding workers and waits them out.
func (p *ParallelScan) abort() {
	if !p.closed {
		p.closed = true
		close(p.done)
	}
	for i := range p.parts {
		// Drain so no worker stays blocked on a send that raced the
		// done close.
		for range p.parts[i].ch {
		}
	}
	p.wg.Wait()
}

// Next drains the merged buffer.
func (p *ParallelScan) Next() (storage.Record, bool, error) {
	if p.pos >= len(p.buf) {
		return nil, false, nil
	}
	r := p.buf[p.pos]
	p.pos++
	p.stats.RowsReturned++
	return r, true, nil
}

// Close cancels any straggling workers (none remain after a successful
// Open) and releases the buffer.
func (p *ParallelScan) Close() error {
	if p.spawned {
		p.abort()
	}
	p.buf = nil
	return nil
}

func (p *ParallelScan) Describe() string { return p.desc }

// Stats aggregates the partitions: examined/returned counts sum to
// exactly the serial scan's (disjoint ranges covering the same keys),
// while PoolFetches is the parent's whole-phase sample (see the file
// comment on attribution). Only meaningful after Open returns.
func (p *ParallelScan) Stats() Stats {
	out := p.stats
	out.RowsReturned = p.stats.RowsReturned
	out.RowsExamined = 0
	for i := range p.parts {
		out.RowsExamined += p.parts[i].stats.RowsExamined
	}
	return out
}

// Children exposes the partitions to EXPLAIN and the stage walk.
func (p *ParallelScan) Children() []Operator {
	out := make([]Operator, len(p.parts))
	for i := range p.parts {
		out[i] = &p.parts[i]
	}
	return out
}
