package exec

import (
	"sort"

	"snapdb/internal/storage"
)

// topnEntry is one buffered row plus its arrival sequence number. The
// sequence breaks comparison ties, which is exactly what makes the
// bounded heap equivalent to a stable sort followed by truncation.
type topnEntry struct {
	rec storage.Record
	seq int
}

// TopN is a blocking bounded-heap replacement for Sort+Limit: it keeps
// only the first n rows of the stable sort order while draining its
// input, so the work is O(rows · log n) instead of O(rows · log rows)
// and the retained memory is O(n). Like Sort it runs below Project and
// drains the (already blocking) scan leaves completely at Open, so the
// buffer-pool fetch sequence is byte-identical to the Sort+Limit plan
// it replaces — only the post-fetch CPU/memory profile changes.
type TopN struct {
	input Operator
	col   int
	desc  bool
	n     int
	label string
	heap  []topnEntry // max-heap on precedes until Open sorts it
	pos   int
	stats Stats
}

// NewTopN builds a top-n on schema column col keeping n rows.
func NewTopN(input Operator, col int, desc bool, n int, label string) *TopN {
	t := new(TopN)
	t.Init(input, col, desc, n, label)
	return t
}

// Init resets t in place (see Filter.Init).
func (t *TopN) Init(input Operator, col int, desc bool, n int, label string) {
	*t = TopN{input: input, col: col, desc: desc, n: n, label: label}
}

// precedes reports whether a comes before b in the output order: by the
// sort column (reversed for DESC), then by arrival order. This is a
// strict weak order with no ties, so "the n smallest under precedes"
// is exactly the first n rows of sort.SliceStable on the column.
func (t *TopN) precedes(a, b topnEntry) bool {
	c := a.rec[t.col].Compare(b.rec[t.col])
	if t.desc {
		c = -c
	}
	if c != 0 {
		return c < 0
	}
	return a.seq < b.seq
}

// The heap is a max-heap under precedes: the root is the entry that
// comes LAST among the kept n, i.e. the first candidate for eviction.

func (t *TopN) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.precedes(t.heap[parent], t.heap[i]) {
			break
		}
		t.heap[parent], t.heap[i] = t.heap[i], t.heap[parent]
		i = parent
	}
}

func (t *TopN) siftDown(i int) {
	for {
		worst := i
		if l := 2*i + 1; l < len(t.heap) && t.precedes(t.heap[worst], t.heap[l]) {
			worst = l
		}
		if r := 2*i + 2; r < len(t.heap) && t.precedes(t.heap[worst], t.heap[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		t.heap[i], t.heap[worst] = t.heap[worst], t.heap[i]
		i = worst
	}
}

// Open drains the input through the bounded heap, then sorts the kept
// rows into emission order. The input is always drained to exhaustion
// — even for n = 0 — because the blocking leaves below have already
// fetched their pages and the operator contract is that LIMIT never
// changes which rows are examined.
func (t *TopN) Open() error {
	if err := t.input.Open(); err != nil {
		return err
	}
	if t.n > 0 {
		t.heap = make([]topnEntry, 0, t.n)
	}
	seq := 0
	for {
		r, ok, err := t.input.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		t.stats.RowsExamined++
		e := topnEntry{rec: r, seq: seq}
		seq++
		if t.n == 0 {
			continue
		}
		if len(t.heap) < t.n {
			t.heap = append(t.heap, e)
			t.siftUp(len(t.heap) - 1)
		} else if t.precedes(e, t.heap[0]) {
			t.heap[0] = e
			t.siftDown(0)
		}
	}
	sort.Slice(t.heap, func(a, b int) bool { return t.precedes(t.heap[a], t.heap[b]) })
	return nil
}

// Next emits the next kept row in sorted order.
func (t *TopN) Next() (storage.Record, bool, error) {
	if t.pos >= len(t.heap) {
		return nil, false, nil
	}
	r := t.heap[t.pos].rec
	t.pos++
	t.stats.RowsReturned++
	return r, true, nil
}

// Close releases the heap and closes the input.
func (t *TopN) Close() error {
	t.heap = nil
	return t.input.Close()
}

func (t *TopN) Describe() string     { return t.label }
func (t *TopN) Stats() Stats         { return t.stats }
func (t *TopN) Children() []Operator { return []Operator{t.input} }
