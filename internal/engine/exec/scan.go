package exec

import (
	"fmt"
	"time"

	"snapdb/internal/btree"
	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
)

// scanBase is the shared buffer-and-emit half of the scan leaves. The
// leaves are blocking: Open runs the complete B+ tree traversal and
// buffers every visited row, then Next drains the buffer. Blocking is
// deliberate — it reproduces the legacy scan loop's buffer-pool fetch
// sequence exactly, because the traversal happens in one piece no
// matter what the operators above do (see the package comment).
//
// With rev set, Open reverses the buffer after the traversal — the
// traversal itself (and therefore the page-fetch sequence) still runs
// in forward key order; only the emission order flips. The planner uses
// this for ORDER BY <pk> DESC, where the tree's unique keys make the
// exact reversal identical to a stable descending sort.
type scanBase struct {
	desc  string
	rev   bool
	buf   []storage.Record
	pos   int
	stats Stats

	// dl, when set, is consulted every deadlineCheckInterval examined
	// rows during the traversal; dlErr records the abort it raised.
	dl    DeadlineCheck
	dlErr error

	// ioWait, when positive, models per-page-batch device latency: the
	// traversal sleeps this long every scanIOInterval examined rows
	// (see Config.SimulatedScanIOWait). Zero — the default — keeps the
	// traversal exactly as fast as it always was.
	ioWait time.Duration

	// vis, when set, arms the MVCC view-resolution hooks (see
	// visible.go). Nil — the default — keeps the scan a current read.
	vis *Visibility
}

// SetDeadlineCheck arms the statement-deadline check on this leaf. It
// must be called before Open; a nil check (the default) disables it.
func (s *scanBase) SetDeadlineCheck(dc DeadlineCheck) { s.dl = dc }

// SetSimulatedIOWait arms the modeled per-page-batch device latency.
// Must be called before Open; zero (the default) disables it.
func (s *scanBase) SetSimulatedIOWait(d time.Duration) { s.ioWait = d }

// checkDeadline evaluates the armed check, recording the error.
func (s *scanBase) checkDeadline() error {
	if s.dl == nil {
		return nil
	}
	if err := s.dl(); err != nil {
		s.dlErr = err
		return err
	}
	return nil
}

// reverse flips the emission order of the buffered rows (no-op unless
// the leaf was built reversed). Called at the end of Open, after the
// traversal's fetches have been attributed.
func (s *scanBase) reverse() {
	if !s.rev {
		return
	}
	for i, j := 0, len(s.buf)-1; i < j; i, j = i+1, j-1 {
		s.buf[i], s.buf[j] = s.buf[j], s.buf[i]
	}
}

func (s *scanBase) Next() (storage.Record, bool, error) {
	if s.pos >= len(s.buf) {
		return nil, false, nil
	}
	r := s.buf[s.pos]
	s.pos++
	s.stats.RowsReturned++
	return r, true, nil
}

func (s *scanBase) Close() error {
	s.buf = nil
	return nil
}

func (s *scanBase) Describe() string     { return s.desc }
func (s *scanBase) Stats() Stats         { return s.stats }
func (s *scanBase) Children() []Operator { return nil }

// visit is the shared traversal callback: count and buffer every row.
// At every deadlineCheckInterval-th row it evaluates the armed deadline
// check and stops the traversal if the statement has run out of time —
// the scan boundary where a runaway statement actually surfaces.
func (s *scanBase) visit(r storage.Record) bool {
	s.stats.RowsExamined++
	if s.dl != nil && s.stats.RowsExamined%deadlineCheckInterval == 0 {
		if s.checkDeadline() != nil {
			return false
		}
	}
	if s.ioWait > 0 && s.stats.RowsExamined%scanIOInterval == 0 {
		time.Sleep(s.ioWait)
	}
	if vr, ok := s.resolveVisit(r); ok {
		s.buf = append(s.buf, vr)
	}
	return true
}

// FullScan reads every row of a tree in key order.
type FullScan struct {
	scanBase
	tree *btree.Tree
	hint int64 // advisory row-count hint for pre-sizing; <=0 disables
	fc   FetchCounter
}

// NewFullScan builds a full scan over tree. hint, when positive and
// sane, pre-sizes the row buffer (the caller passes the table's
// advisory row count for unfiltered scans, 0 otherwise — matching the
// legacy scan loop's pre-sizing rule). rev flips the emission order
// after the forward traversal (see scanBase).
func NewFullScan(tree *btree.Tree, hint int64, rev bool, desc string, fc FetchCounter) *FullScan {
	s := new(FullScan)
	s.Init(tree, hint, rev, desc, fc)
	return s
}

// Init resets s in place so callers can embed the operator in a
// larger per-execution allocation instead of heap-allocating each
// node separately.
func (s *FullScan) Init(tree *btree.Tree, hint int64, rev bool, desc string, fc FetchCounter) {
	*s = FullScan{scanBase: scanBase{desc: desc, rev: rev}, tree: tree, hint: hint, fc: fc}
}

// Open runs the traversal.
func (s *FullScan) Open() error {
	if err := s.checkDeadline(); err != nil {
		return err
	}
	if s.hint > 0 && s.hint <= 1<<16 {
		s.buf = make([]storage.Record, 0, s.hint)
	}
	before := sampleFetches(s.fc)
	err := s.tree.Scan(s.visit)
	s.stats.PoolFetches += sampleFetches(s.fc) - before
	if err == nil && s.dlErr != nil {
		return s.dlErr
	}
	s.mergeGhosts()
	s.reverse()
	return err
}

// IndexPointScan reads the rows matching one exact key of a tree — the
// clustered primary-key tree for `pk = ?` predicates.
type IndexPointScan struct {
	scanBase
	tree *btree.Tree
	key  sqlparse.Value
	fc   FetchCounter
}

// NewIndexPointScan builds a point scan for key.
func NewIndexPointScan(tree *btree.Tree, key sqlparse.Value, desc string, fc FetchCounter) *IndexPointScan {
	s := new(IndexPointScan)
	s.Init(tree, key, desc, fc)
	return s
}

// Init resets s in place (see FullScan.Init).
func (s *IndexPointScan) Init(tree *btree.Tree, key sqlparse.Value, desc string, fc FetchCounter) {
	*s = IndexPointScan{scanBase: scanBase{desc: desc}, tree: tree, key: key, fc: fc}
}

// Open runs the point traversal. A point lookup matches at most one
// row in a unique tree, so the buffer is pre-sized to one.
func (s *IndexPointScan) Open() error {
	if err := s.checkDeadline(); err != nil {
		return err
	}
	s.buf = make([]storage.Record, 0, 1)
	before := sampleFetches(s.fc)
	err := s.tree.Range(s.key, s.key, s.visit)
	s.stats.PoolFetches += sampleFetches(s.fc) - before
	if err == nil && s.dlErr != nil {
		return s.dlErr
	}
	s.mergeGhosts()
	return err
}

// IndexRangeScan reads the rows (or index entries, when running over a
// secondary index tree) with keys in [lo, hi].
type IndexRangeScan struct {
	scanBase
	tree   *btree.Tree
	lo, hi sqlparse.Value
	fc     FetchCounter
}

// NewIndexRangeScan builds a range scan over [lo, hi]. rev flips the
// emission order after the forward traversal (see scanBase).
func NewIndexRangeScan(tree *btree.Tree, lo, hi sqlparse.Value, rev bool, desc string, fc FetchCounter) *IndexRangeScan {
	s := new(IndexRangeScan)
	s.Init(tree, lo, hi, rev, desc, fc)
	return s
}

// Init resets s in place (see FullScan.Init).
func (s *IndexRangeScan) Init(tree *btree.Tree, lo, hi sqlparse.Value, rev bool, desc string, fc FetchCounter) {
	*s = IndexRangeScan{scanBase: scanBase{desc: desc, rev: rev}, tree: tree, lo: lo, hi: hi, fc: fc}
}

// Open runs the range traversal.
func (s *IndexRangeScan) Open() error {
	if err := s.checkDeadline(); err != nil {
		return err
	}
	before := sampleFetches(s.fc)
	err := s.tree.Range(s.lo, s.hi, s.visit)
	s.stats.PoolFetches += sampleFetches(s.fc) - before
	if err == nil && s.dlErr != nil {
		return s.dlErr
	}
	s.mergeGhosts()
	s.reverse()
	return err
}

// KeyLookup resolves secondary-index entries to full rows: its input
// yields {compositeKey, pk} entries, and each Next searches the
// clustered tree for the pk. Lookups run row-at-a-time, but because
// the index leaf below is blocking, the clustered searches still
// happen in the same order (all index-leaf fetches, then one search
// per entry) as the legacy two-phase index scan.
//
// With revCol >= 0 the lookup runs in group-reverse mode for ORDER BY
// <indexed col> DESC: Open resolves every entry immediately — in the
// same forward order, so the clustered search sequence (and its fetch
// attribution) is byte-identical to the row-at-a-time mode — and then
// emits equal-key groups of schema column revCol in reverse group
// order, forward within each group. Because the index leaf yields
// (value ASC, pk ASC), that emission order is exactly what a stable
// descending sort on the column would produce.
type KeyLookup struct {
	input     Operator
	clustered *btree.Tree
	indexName string
	desc      string
	revCol    int // schema column for group-reverse emission; -1 disables
	rows      []storage.Record
	pos       int
	fc        FetchCounter
	stats     Stats

	// resolver, when set, serves version-store rows for entries whose
	// visible version is not the clustered tree's row (see visible.go).
	resolver LookupResolver
}

// NewKeyLookup builds a lookup of input's pk entries in clustered.
func NewKeyLookup(input Operator, clustered *btree.Tree, indexName, desc string, revCol int, fc FetchCounter) *KeyLookup {
	k := new(KeyLookup)
	k.Init(input, clustered, indexName, desc, revCol, fc)
	return k
}

// Init resets k in place (see FullScan.Init).
func (k *KeyLookup) Init(input Operator, clustered *btree.Tree, indexName, desc string, revCol int, fc FetchCounter) {
	*k = KeyLookup{input: input, clustered: clustered, indexName: indexName, desc: desc, revCol: revCol, fc: fc}
}

// resolve searches the clustered tree for one index entry's pk,
// attributing the fetches to this operator.
func (k *KeyLookup) resolve(entry storage.Record) (storage.Record, error) {
	pk := entry[1]
	k.stats.RowsExamined++
	if k.resolver != nil {
		if row, ok := k.resolver(pk); ok {
			return row, nil
		}
	}
	before := sampleFetches(k.fc)
	row, found, err := k.clustered.Search(pk)
	k.stats.PoolFetches += sampleFetches(k.fc) - before
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, fmt.Errorf("exec: index %q points at missing pk %s", k.indexName, pk)
	}
	return row, nil
}

// Open opens the index leaf below. In group-reverse mode it also
// resolves every entry (forward) and rearranges the buffered rows into
// the reversed-group emission order.
func (k *KeyLookup) Open() error {
	if err := k.input.Open(); err != nil {
		return err
	}
	if k.revCol < 0 {
		return nil
	}
	var fwd []storage.Record
	for {
		entry, ok, err := k.input.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		row, err := k.resolve(entry)
		if err != nil {
			return err
		}
		fwd = append(fwd, row)
	}
	k.rows = make([]storage.Record, 0, len(fwd))
	for end := len(fwd); end > 0; {
		start := end - 1
		for start > 0 && fwd[start-1][k.revCol].Equal(fwd[start][k.revCol]) {
			start--
		}
		k.rows = append(k.rows, fwd[start:end]...)
		end = start
	}
	return nil
}

// Next resolves the next index entry to its clustered row (or, in
// group-reverse mode, emits the next buffered row).
func (k *KeyLookup) Next() (storage.Record, bool, error) {
	if k.revCol >= 0 {
		if k.pos >= len(k.rows) {
			return nil, false, nil
		}
		r := k.rows[k.pos]
		k.pos++
		k.stats.RowsReturned++
		return r, true, nil
	}
	entry, ok, err := k.input.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	row, err := k.resolve(entry)
	if err != nil {
		return nil, false, err
	}
	k.stats.RowsReturned++
	return row, true, nil
}

// Close releases the group-reverse buffer and closes the index leaf
// below.
func (k *KeyLookup) Close() error {
	k.rows = nil
	return k.input.Close()
}

func (k *KeyLookup) Describe() string     { return k.desc }
func (k *KeyLookup) Stats() Stats         { return k.stats }
func (k *KeyLookup) Children() []Operator { return []Operator{k.input} }
