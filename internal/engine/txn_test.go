package engine

import (
	"strings"
	"testing"

	"snapdb/internal/wal"
)

func TestTxnCommitMakesWritesVisible(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	mustExec(t, s, "BEGIN")
	if !s.InTransaction() {
		t.Fatal("not in transaction after BEGIN")
	}
	mustExec(t, s, "INSERT INTO t (id, v) VALUES (1, 'committed')")
	mustExec(t, s, "COMMIT")
	if s.InTransaction() {
		t.Fatal("still in transaction after COMMIT")
	}
	res := mustExec(t, s, "SELECT v FROM t WHERE id = 1")
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "committed" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestTxnRollbackInsert(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO t (id, v) VALUES (1, 'doomed')")
	mustExec(t, s, "ROLLBACK")
	res := mustExec(t, s, "SELECT * FROM t")
	if len(res.Rows) != 0 {
		t.Errorf("rolled-back insert visible: %v", res.Rows)
	}
}

func TestTxnRollbackUpdateRestoresOldValue(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT, n INT)")
	mustExec(t, s, "INSERT INTO t (id, v, n) VALUES (1, 'original', 10)")
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "UPDATE t SET v = 'changed', n = 99 WHERE id = 1")
	mustExec(t, s, "ROLLBACK")
	res := mustExec(t, s, "SELECT v, n FROM t WHERE id = 1")
	if res.Rows[0][0].Str != "original" || res.Rows[0][1].Int != 10 {
		t.Errorf("row after rollback = %v", res.Rows[0])
	}
}

func TestTxnRollbackDeleteReinserts(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	mustExec(t, s, "INSERT INTO t (id, v) VALUES (1, 'precious')")
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "DELETE FROM t WHERE id = 1")
	mustExec(t, s, "ROLLBACK")
	res := mustExec(t, s, "SELECT v FROM t WHERE id = 1")
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "precious" {
		t.Errorf("deleted row not restored: %v", res.Rows)
	}
}

func TestTxnRollbackMixedReverseOrder(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	mustExec(t, s, "INSERT INTO t (id, v) VALUES (1, 100)")
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "UPDATE t SET v = 200 WHERE id = 1")
	mustExec(t, s, "UPDATE t SET v = 300 WHERE id = 1")
	mustExec(t, s, "INSERT INTO t (id, v) VALUES (2, 2)")
	mustExec(t, s, "DELETE FROM t WHERE id = 1")
	mustExec(t, s, "ROLLBACK")
	res := mustExec(t, s, "SELECT v FROM t WHERE id = 1")
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 100 {
		t.Errorf("id=1 after rollback = %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT * FROM t WHERE id = 2")
	if len(res.Rows) != 0 {
		t.Errorf("id=2 still present after rollback")
	}
}

func TestTxnBinlogOnlyOnCommit(t *testing.T) {
	e, now := newEngine(t, Defaults())
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	before := e.Binlog().Len()

	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO t (id, v) VALUES (1, 'aborted-write')")
	if e.Binlog().Len() != before {
		t.Error("uncommitted statement reached the binlog")
	}
	mustExec(t, s, "ROLLBACK")
	if e.Binlog().Len() != before {
		t.Error("rolled-back statement reached the binlog")
	}

	*now = 5_000_000
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO t (id, v) VALUES (2, 'committed-write')")
	*now = 5_000_100
	mustExec(t, s, "COMMIT")
	evs := e.Binlog().Events()
	if len(evs) != before+1 {
		t.Fatalf("binlog events = %d, want %d", len(evs), before+1)
	}
	last := evs[len(evs)-1]
	if !strings.Contains(last.Statement, "committed-write") {
		t.Errorf("binlog statement = %q", last.Statement)
	}
	if last.Timestamp != 5_000_100 {
		t.Errorf("binlog timestamp = %d, want commit time", last.Timestamp)
	}
}

// TestTxnAbortedWritesPersistInWAL is the paper's §3 point: rollback
// requires undo data on disk, so even aborted transactions leave a
// byte-level transcript — original changes plus compensations.
func TestTxnAbortedWritesPersistInWAL(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	walBefore := len(e.WAL().Redo.Records())
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO t (id, v) VALUES (1, 'secret-aborted-value')")
	mustExec(t, s, "ROLLBACK")
	recs := e.WAL().Redo.Records()[walBefore:]
	if len(recs) != 3 { // the insert + the compensating delete + the abort marker
		t.Fatalf("aborted txn left %d WAL records, want 3", len(recs))
	}
	if recs[0].Op != wal.OpInsert || recs[0].Image[1].Str != "secret-aborted-value" {
		t.Errorf("original change not in WAL: %+v", recs[0])
	}
	if recs[1].Op != wal.OpDelete {
		t.Errorf("compensation not in WAL: %+v", recs[1])
	}
	if recs[2].Op != wal.OpAbort {
		t.Errorf("abort marker not in WAL: %+v", recs[2])
	}
}

func TestTxnControlErrors(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	if _, err := s.Execute("COMMIT"); err == nil {
		t.Error("COMMIT without BEGIN accepted")
	}
	if _, err := s.Execute("ROLLBACK"); err == nil {
		t.Error("ROLLBACK without BEGIN accepted")
	}
	mustExec(t, s, "BEGIN")
	if _, err := s.Execute("BEGIN"); err == nil {
		t.Error("nested BEGIN accepted")
	}
}

func TestTxnIsolatedPerSession(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	a := e.Connect("a")
	b := e.Connect("b")
	mustExec(t, a, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	mustExec(t, a, "BEGIN")
	mustExec(t, a, "INSERT INTO t (id, v) VALUES (1, 1)")
	// Session b is in autocommit; its write must hit the binlog
	// immediately despite a's open transaction.
	before := e.Binlog().Len()
	mustExec(t, b, "INSERT INTO t (id, v) VALUES (2, 2)")
	if e.Binlog().Len() != before+1 {
		t.Error("autocommit write from another session was buffered")
	}
	mustExec(t, a, "ROLLBACK")
	res := mustExec(t, b, "SELECT * FROM t WHERE id = 2")
	if len(res.Rows) != 1 {
		t.Error("rollback of session a affected session b's row")
	}
}

func TestTxnRollbackInvalidatesQueryCache(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	mustExec(t, s, "INSERT INTO t (id, v) VALUES (1, 10)")
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "UPDATE t SET v = 99 WHERE id = 1")
	q := "SELECT v FROM t WHERE id = 1"
	res := mustExec(t, s, q)
	if res.Rows[0][0].Int != 99 {
		t.Fatalf("in-txn read = %v", res.Rows)
	}
	mustExec(t, s, "ROLLBACK")
	res = mustExec(t, s, q)
	if res.FromCache {
		t.Error("stale cache entry survived rollback")
	}
	if res.Rows[0][0].Int != 10 {
		t.Errorf("post-rollback read = %v", res.Rows)
	}
}
