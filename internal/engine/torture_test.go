package engine

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"snapdb/internal/failpoint"
	"snapdb/internal/vfs"
)

// tortureStmts is the deterministic workload the crash-torture harness
// replays: two tables, secondary index, autocommit DML, an explicit
// committed transaction, and an explicit rolled-back one.
func tortureStmts() []string {
	stmts := []string{
		"CREATE TABLE users (id INT PRIMARY KEY, name TEXT, karma INT)",
		"CREATE TABLE orders (id INT PRIMARY KEY, uid INT, total INT)",
	}
	for i := 0; i < 6; i++ {
		stmts = append(stmts, fmt.Sprintf(
			"INSERT INTO users (id, name, karma) VALUES (%d, 'user-%02d', %d)", i, i, i*10))
	}
	stmts = append(stmts, "CREATE INDEX idx_uid ON orders (uid)")
	for i := 0; i < 6; i++ {
		stmts = append(stmts, fmt.Sprintf(
			"INSERT INTO orders (id, uid, total) VALUES (%d, %d, %d)", 100+i, i%3, 50+i))
	}
	stmts = append(stmts,
		"UPDATE users SET karma = 999 WHERE id = 2",
		"DELETE FROM orders WHERE id = 103",
		"BEGIN",
		"INSERT INTO users (id, name, karma) VALUES (50, 'txn-user', 1)",
		"UPDATE users SET karma = 2 WHERE id = 50",
		"INSERT INTO orders (id, uid, total) VALUES (200, 50, 75)",
		"COMMIT",
		"UPDATE users SET name = 'renamed' WHERE id = 0",
		"BEGIN",
		"INSERT INTO users (id, name, karma) VALUES (60, 'doomed', 0)",
		"DELETE FROM users WHERE id = 1",
		"UPDATE orders SET total = 0 WHERE id = 100",
		"ROLLBACK",
		"INSERT INTO orders (id, uid, total) VALUES (300, 2, 500)",
		"BEGIN",
		"UPDATE users SET karma = 777 WHERE id = 3",
		"DELETE FROM orders WHERE id = 104",
		"COMMIT",
		"UPDATE users SET karma = 0 WHERE id = 4",
		"DELETE FROM users WHERE id = 5",
	)
	return stmts
}

// refDigests returns, for every statement-prefix length 0..len(stmts),
// the state digest a crash-then-recover at that point must land on:
// the prefix executed on a fresh in-memory engine, with any transaction
// still open at the cut rolled back (recovery rolls back losers).
func refDigests(t testing.TB, stmts []string) []string {
	t.Helper()
	out := make([]string, 0, len(stmts)+1)
	for i := 0; i <= len(stmts); i++ {
		e, _ := newEngine(t, Defaults())
		s := e.Connect("ref")
		open := false
		for _, q := range stmts[:i] {
			mustExec(t, s, q)
			switch q {
			case "BEGIN":
				open = true
			case "COMMIT", "ROLLBACK":
				open = false
			}
		}
		if open {
			mustExec(t, s, "ROLLBACK")
		}
		out = append(out, digestOf(t, e))
	}
	return out
}

// runUntilError executes stmts against a fresh durable engine on fs and
// returns how many statements were acknowledged before the first error
// (len(stmts) if none). Engine construction itself counts as statement
// zero: if it fails, acked is 0.
func runUntilError(fs vfs.FS, stmts []string) (acked int) {
	return runUntilErrorCfg(fs, Defaults(), stmts)
}

// runUntilErrorCfg is runUntilError under an explicit configuration —
// the encrypted torture runs pass EncryptAtRest here.
func runUntilErrorCfg(fs vfs.FS, cfg Config, stmts []string) (acked int) {
	cfg.FS = fs
	e, err := New(cfg)
	if err != nil {
		return 0
	}
	e.Clock = func() int64 { return 1_000_000 }
	s := e.Connect("app")
	for _, q := range stmts {
		if _, err := s.Execute(q); err != nil {
			return acked
		}
		acked++
	}
	return acked
}

func tortureSeeds(t testing.TB) []int64 {
	spec := os.Getenv("SNAPDB_TORTURE_SEEDS")
	if spec == "" {
		return []int64{1}
	}
	var seeds []int64
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("SNAPDB_TORTURE_SEEDS: %v", err)
		}
		seeds = append(seeds, n)
	}
	return seeds
}

// TestCrashTortureKillPoints is the harness the issue asks for: crash
// the engine at every k-th durable operation (write, sync, rename, ...)
// across the workload, recover from the surviving bytes, and assert the
// recovered state digest matches the reference prefix of acknowledged
// statements — the in-flight statement may land either way, so digests
// for acked and acked+1 are both legal.
func TestCrashTortureKillPoints(t *testing.T) {
	stmts := tortureStmts()
	refs := refDigests(t, stmts)

	for _, seed := range tortureSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			// Dry run: count the durable operations the workload performs.
			dryReg := failpoint.New(seed)
			if got := runUntilError(vfs.NewFaultFS(vfs.NewMemFS(), dryReg), stmts); got != len(stmts) {
				t.Fatalf("dry run failed at statement %d", got)
			}
			total := int(dryReg.TotalHits())
			stride := total / 150
			if stride < 1 {
				stride = 1
			}
			points := 0
			for k := 1; k <= total; k += stride {
				mem := vfs.NewMemFS()
				reg := failpoint.New(seed)
				reg.Arm("*", failpoint.KindCrash, uint64(k))
				acked := runUntilError(vfs.NewFaultFS(mem, reg), stmts)
				if !reg.Crashed() {
					t.Fatalf("kill-point %d never fired (acked %d)", k, acked)
				}
				mem.Crash()

				r, rep, err := Recover(mem, Defaults())
				if err != nil {
					t.Fatalf("kill-point %d: recovery failed: %v", k, err)
				}
				got := digestOf(t, r)
				next := acked + 1
				if next > len(stmts) {
					next = len(stmts)
				}
				if got != refs[acked] && got != refs[next] {
					t.Fatalf("kill-point %d diverged: acked %d statements, report %+v", k, acked, rep)
				}
				points++
			}
			if points < 100 {
				t.Errorf("only %d kill-points exercised, want >= 100 (total ops %d)", points, total)
			}
			t.Logf("seed %d: %d kill-points over %d durable ops, all recovered consistently", seed, points, total)
		})
	}
}

// TestCrashTortureDroppedSyncs combines lying fsyncs with crashes: the
// redo file's syncs are silently dropped, so at the crash any suffix of
// acknowledged statements may be lost — but the recovered state must
// still be SOME consistent prefix, never a torn hybrid.
func TestCrashTortureDroppedSyncs(t *testing.T) {
	stmts := tortureStmts()
	refs := refDigests(t, stmts)
	valid := make(map[string]int, len(refs))
	for i, d := range refs {
		valid[d] = i
	}

	dryReg := failpoint.New(1)
	if got := runUntilError(vfs.NewFaultFS(vfs.NewMemFS(), dryReg), stmts); got != len(stmts) {
		t.Fatalf("dry run failed at statement %d", got)
	}
	total := int(dryReg.TotalHits())

	for k := total / 4; k <= total; k += total / 4 {
		mem := vfs.NewMemFS()
		reg := failpoint.New(int64(k))
		reg.Arm("sync:"+FileRedo, failpoint.KindDropSync, 0) // drop every redo fsync
		reg.Arm("*", failpoint.KindCrash, uint64(k))
		acked := runUntilError(vfs.NewFaultFS(mem, reg), stmts)
		mem.Crash()

		r, rep, err := Recover(mem, Defaults())
		if err != nil {
			t.Fatalf("kill-point %d: recovery failed: %v", k, err)
		}
		got := digestOf(t, r)
		i, ok := valid[got]
		if !ok {
			t.Fatalf("kill-point %d: recovered state matches no statement prefix (acked %d, report %+v)", k, acked, rep)
		}
		if i > acked+1 {
			t.Fatalf("kill-point %d: recovered prefix %d is ahead of acked %d", k, i, acked)
		}
	}
}

// TestCrashTortureBitFlips corrupts the k-th redo write with a silent
// single-bit flip, crashes at the end, and asserts recovery detects the
// damage via checksum, truncates, reports — and never panics.
func TestCrashTortureBitFlips(t *testing.T) {
	stmts := tortureStmts()
	// The workload's last DDL (CREATE INDEX, statement 9) checkpoints and
	// truncates the redo file, legitimately erasing the 12 writes before
	// it — so the flips must target later writes to hit surviving bytes.
	// The RedoTruncated assertion below fails loudly if these indices
	// ever drift back behind the last checkpoint.
	for _, k := range []uint64{14, 18, 25, 33} {
		mem := vfs.NewMemFS()
		reg := failpoint.New(int64(k))
		reg.Arm("write:"+FileRedo, failpoint.KindBitFlip, k)
		if got := runUntilError(vfs.NewFaultFS(mem, reg), stmts); got != len(stmts) {
			t.Fatalf("bit flip %d: silent corruption turned into an error at statement %d", k, got)
		}
		mem.Crash()

		r, rep, err := Recover(mem, Defaults())
		if err != nil {
			t.Fatalf("bit flip %d: recovery failed: %v", k, err)
		}
		if rep.RedoTruncated == nil {
			t.Fatalf("bit flip %d went undetected", k)
		}
		// A flip in the payload or CRC reads as a checksum mismatch; a
		// flip in the length field reads as a torn or oversized frame.
		// All are detected truncations — what must never happen is the
		// flipped bytes being served as data.
		if r := rep.RedoTruncated.Reason; !strings.Contains(r, "checksum") &&
			!strings.Contains(r, "torn") && !strings.Contains(r, "bad") {
			t.Errorf("bit flip %d: reason %q", k, r)
		}
		// The engine is usable on the surviving prefix.
		s := r.Connect("app")
		if _, err := s.Execute("SELECT name FROM users WHERE id = 0"); err != nil {
			t.Errorf("bit flip %d: recovered engine cannot serve: %v", k, err)
		}
	}
}
