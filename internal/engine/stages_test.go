package engine

import (
	"strings"
	"testing"
)

// The stage-event surface end to end: executing a statement must leave
// one stage row per plan operator, joinable to the statement tables by
// digest, with the per-operator counters reflecting what the scan did —
// and the rows must be reachable through SQL like every other
// performance_schema table.
func TestStagesRecordedPerOperator(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	defer s.Close()
	setupCustomers(t, s, 20)

	e.PerfSchema().Reset()
	res := mustExec(t, s, "SELECT name FROM customers WHERE age >= 30 ORDER BY age LIMIT 4")

	evs := e.PerfSchema().StagesHistory()
	// Plan: Project -> Top-N sort (folding Sort+Limit) -> Filter ->
	// Table scan.
	if len(evs) != 4 {
		t.Fatalf("recorded %d stage events, want 4: %+v", len(evs), evs)
	}
	wantOps := []string{"Project:", "Top-N sort:", "Filter:", "Table scan"}
	for i, ev := range evs {
		if !strings.Contains(ev.Operator, wantOps[i]) {
			t.Errorf("stage %d operator = %q, want containing %q", i, ev.Operator, wantOps[i])
		}
		if ev.Seq != i || ev.Depth != i {
			t.Errorf("stage %d seq/depth = %d/%d, want %d/%d", i, ev.Seq, ev.Depth, i, i)
		}
		if ev.Digest == "" {
			t.Errorf("stage %d has no digest", i)
		}
	}
	scan := evs[3]
	if scan.RowsExamined != 20 {
		t.Errorf("scan examined %d rows, want 20", scan.RowsExamined)
	}
	if scan.PoolFetches == 0 {
		t.Error("scan attributed no buffer-pool fetches")
	}
	topn := evs[1]
	if topn.RowsExamined != 10 {
		t.Errorf("top-n examined %d rows, want the filter's 10", topn.RowsExamined)
	}
	if topn.RowsReturned != len(res.Rows) || topn.RowsReturned != 4 {
		t.Errorf("top-n returned %d rows, want 4", topn.RowsReturned)
	}

	// The same events through the SQL surface.
	sys := mustExec(t, s, "SELECT * FROM performance_schema.events_stages_history")
	if len(sys.Columns) != 9 || sys.Columns[5] != "operator" {
		t.Fatalf("stage table columns = %v", sys.Columns)
	}
	if len(sys.Rows) != 4 {
		t.Fatalf("stage table has %d rows, want 4", len(sys.Rows))
	}
	if got := sys.Rows[3][5].Str; !strings.Contains(got, "Table scan") {
		t.Errorf("row 3 operator = %q", got)
	}
}

// A query-cache hit skips execution entirely, so it must record no
// stage events; failed statements record none either.
func TestStagesSkippedOnCacheHitAndError(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	defer s.Close()
	setupCustomers(t, s, 10)

	const q = "SELECT name FROM customers WHERE id = 3"
	mustExec(t, s, q)
	e.PerfSchema().Reset()

	res := mustExec(t, s, q)
	if !res.FromCache {
		t.Fatal("expected a query-cache hit")
	}
	if n := len(e.PerfSchema().StagesHistory()); n != 0 {
		t.Errorf("cache hit recorded %d stage events", n)
	}

	if _, err := s.Execute("SELECT nosuch FROM customers"); err == nil {
		t.Fatal("expected error")
	}
	if n := len(e.PerfSchema().StagesHistory()); n != 0 {
		t.Errorf("failed statement recorded %d stage events", n)
	}
}

// Mutations profile their scan subtree too.
func TestStagesForUpdateAndDelete(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	defer s.Close()
	setupCustomers(t, s, 10)
	e.PerfSchema().Reset()

	mustExec(t, s, "UPDATE customers SET age = 99 WHERE id = 4")
	evs := e.PerfSchema().StagesHistory()
	if len(evs) == 0 {
		t.Fatal("UPDATE recorded no stage events")
	}
	leaf := evs[len(evs)-1]
	if !strings.Contains(leaf.Operator, "Point scan") || leaf.RowsExamined != 1 {
		t.Errorf("UPDATE leaf stage = %+v, want point scan examining 1 row", leaf)
	}
}
