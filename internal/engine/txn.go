package engine

import (
	"fmt"

	"snapdb/internal/binlog"
	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
	"snapdb/internal/wal"
)

// txnState is one open explicit transaction.
//
// The design mirrors the ACID machinery §3 of the paper points at:
// every change is already in the undo log before commit (that is what
// makes rollback — even across crashes — possible), so *both* committed
// and aborted transactions leave byte-level traces in the WAL. Only the
// binlog is commit-scoped: statement events buffer in the transaction
// and flush on COMMIT, as in MySQL's binlog cache.
type txnState struct {
	walTxn    uint64         // WAL transaction id (stamps every record)
	undo      []wal.Record   // this transaction's undo records, in order
	binlogBuf []binlog.Event // statement events awaiting COMMIT
}

// stmtTxn returns the WAL transaction id a statement logs under: the
// open explicit transaction's, or a fresh ephemeral id whose commit
// marker the statement itself writes (auto=true). Recovery replays a
// transaction only if its commit marker reached disk, so autocommit
// statements are crash-atomic too.
func (s *Session) stmtTxn(e *Engine) (txn uint64, auto bool) {
	if s.txn != nil {
		return s.txn.walTxn, false
	}
	return e.wal.BeginTxn(), true
}

// noteUndo buffers an undo record when a transaction is open. In
// autocommit mode there is nothing to buffer: the statement is already
// durable.
func (s *Session) noteUndo(rec wal.Record) {
	if s.txn != nil {
		s.txn.undo = append(s.txn.undo, rec)
	}
}

// emitBinlog routes a statement's binlog event: buffered inside an open
// transaction, committed through the binlog's group-commit pipeline
// otherwise (which stamps the commit-time LSN and timestamp). The
// returned error is the durability sink's, if one is attached.
func (s *Session) emitBinlog(e *Engine, ev binlog.Event) error {
	if !e.cfg.EnableBinlog {
		return nil
	}
	if s.txn != nil {
		s.txn.binlogBuf = append(s.txn.binlogBuf, ev)
		return nil
	}
	if err := e.binlog.Commit(ev); err != nil {
		return fmt.Errorf("engine: binlog: %w", err)
	}
	return nil
}

// InTransaction reports whether the session has an open transaction.
func (s *Session) InTransaction() bool { return s.txn != nil }

func (e *Engine) execTxnControl(s *Session, st *sqlparse.TxnControl, ts int64) (*Result, error) {
	switch st.Op {
	case sqlparse.TxnBegin:
		if s.txn != nil {
			return nil, fmt.Errorf("engine: transaction already open")
		}
		s.txn = &txnState{walTxn: e.wal.BeginTxn()}
		e.openTxns.Add(1)
		return &Result{}, nil
	case sqlparse.TxnCommit:
		if s.txn == nil {
			return nil, fmt.Errorf("engine: COMMIT without open transaction")
		}
		// Flush buffered statement events with the commit timestamp as
		// one contiguous group-committed batch, as MySQL writes the
		// binlog cache at commit. On a sink failure the transaction
		// stays open: nothing is durable, and the client may retry or
		// roll back.
		evs := s.txn.binlogBuf
		for i := range evs {
			evs[i].Timestamp = ts
		}
		if err := e.binlog.CommitBatch(evs); err != nil {
			return nil, fmt.Errorf("engine: binlog: %w", err)
		}
		s.txn.binlogBuf = nil
		// The commit marker is the transaction's durability point:
		// recovery replays these changes only once it is on disk.
		if len(s.txn.undo) > 0 {
			if err := e.wal.LogCommit(s.txn.walTxn); err != nil {
				return nil, fmt.Errorf("engine: wal commit: %w", err)
			}
		}
		s.txn = nil
		e.openTxns.Add(-1)
		return &Result{}, nil
	case sqlparse.TxnRollback:
		if s.txn == nil {
			return nil, fmt.Errorf("engine: ROLLBACK without open transaction")
		}
		txn := s.txn
		s.txn = nil // compensations below run in autocommit mode
		e.openTxns.Add(-1)
		if err := e.applyUndo(txn.walTxn, txn.undo); err != nil {
			return nil, fmt.Errorf("engine: rollback: %w", err)
		}
		// The abort marker records that the rollback ran to completion;
		// after a crash, recovery sees it and leaves the compensated
		// state alone instead of undoing a second time.
		if len(txn.undo) > 0 {
			if err := e.wal.LogAbort(txn.walTxn); err != nil {
				return nil, fmt.Errorf("engine: wal abort: %w", err)
			}
		}
		return &Result{RowsAffected: len(txn.undo)}, nil
	default:
		return nil, fmt.Errorf("engine: unknown transaction op")
	}
}

// applyUndo reverses a transaction's changes newest-first, logging
// compensating records to the WAL under the same transaction id (as
// InnoDB does) — which is exactly why §3 notes that even aborted
// activity persists on disk.
func (e *Engine) applyUndo(txn uint64, undo []wal.Record) error {
	for i := len(undo) - 1; i >= 0; i-- {
		rec := undo[i]
		t, ok := e.TableByID(rec.Table)
		if !ok {
			return fmt.Errorf("undo references unknown table %d", rec.Table)
		}
		switch rec.Op {
		case wal.OpInsert:
			// Undo an insert: delete the key (fetching the row first so
			// secondary indexes can be unkeyed).
			if len(rec.Image) < 1 {
				return fmt.Errorf("corrupt insert-undo image")
			}
			key := rec.Image[0]
			row, found, err := t.Tree.Search(key)
			if err != nil {
				return err
			}
			if found {
				if _, err := t.Tree.Delete(key); err != nil {
					return err
				}
				if err := indexDeleteRow(t, row); err != nil {
					return err
				}
				t.rows.Add(-1)
				if _, _, err := e.wal.TxDelete(txn, t.ID, storage.Record{key}); err != nil {
					return fmt.Errorf("logging compensation: %w", err)
				}
			}
		case wal.OpUpdate:
			// Undo an update: restore the old column value.
			if len(rec.Image) < 2 {
				return fmt.Errorf("corrupt update-undo image")
			}
			key, oldVal := rec.Image[0], rec.Image[1]
			cur, found, err := t.Tree.Search(key)
			if err != nil {
				return err
			}
			if !found {
				return fmt.Errorf("undo target row %s missing", key)
			}
			col := int(rec.Column)
			if col < 0 || col >= len(cur) {
				return fmt.Errorf("undo column %d out of range", col)
			}
			restored := cur.Clone()
			if _, _, err := e.wal.TxUpdate(txn, t.ID, storage.Record{key}, rec.Column,
				storage.Record{cur[col]}, storage.Record{oldVal}); err != nil {
				return fmt.Errorf("logging compensation: %w", err)
			}
			if err := indexUpdateColumn(t, key, col, cur[col], oldVal); err != nil {
				return err
			}
			restored[col] = oldVal
			if _, err := t.Tree.Update(key, restored); err != nil {
				return err
			}
		case wal.OpDelete:
			// Undo a delete: reinsert the full old row.
			if err := t.Tree.Insert(rec.Image.Clone()); err != nil {
				return err
			}
			if err := indexInsertRow(t, rec.Image); err != nil {
				return err
			}
			t.rows.Add(1)
			t.statsNoteInsert(rec.Image)
			if _, _, err := e.wal.TxInsert(txn, t.ID, rec.Image); err != nil {
				return fmt.Errorf("logging compensation: %w", err)
			}
		default:
			return fmt.Errorf("unknown undo op %v", rec.Op)
		}
		e.qcache.InvalidateTable(t.Name)
	}
	return nil
}
