package engine

import (
	"fmt"
	"sync"

	"snapdb/internal/binlog"
	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
	"snapdb/internal/wal"
)

// txnState is one open explicit transaction.
//
// The design mirrors the ACID machinery §3 of the paper points at:
// every change is already in the undo log before commit (that is what
// makes rollback — even across crashes — possible), so *both* committed
// and aborted transactions leave byte-level traces in the WAL. Only the
// binlog is commit-scoped: statement events buffer in the transaction
// and flush on COMMIT, as in MySQL's binlog cache.
type txnState struct {
	walTxn uint64 // WAL transaction id (stamps every record)

	// mu guards undo, binlogBuf and view: the owning session mutates
	// them mid-transaction while the active_transactions system view
	// reads them from other sessions.
	mu        sync.Mutex
	undo      []wal.Record   // this transaction's undo records, in order
	binlogBuf []binlog.Event // statement events awaiting COMMIT

	// sessionID owns the transaction (for the active_transactions view).
	sessionID int
	// readOnly marks a SET TRANSACTION READ ONLY transaction: DML is
	// refused, reads still pin a consistent view.
	readOnly bool
	// view is the transaction's MVCC read view, pinned at its first
	// consistent read (repeatable read) and released at COMMIT/ROLLBACK.
	view *readView
}

// stmtTxn returns the WAL transaction id a statement logs under: the
// open explicit transaction's, or a fresh ephemeral id whose commit
// marker the statement itself writes (auto=true). Recovery replays a
// transaction only if its commit marker reached disk, so autocommit
// statements are crash-atomic too.
func (s *Session) stmtTxn(e *Engine) (txn uint64, auto bool) {
	if s.txn != nil {
		return s.txn.walTxn, false
	}
	return e.wal.BeginTxn(), true
}

// noteUndo buffers an undo record when a transaction is open. In
// autocommit mode there is nothing to buffer: the statement is already
// durable.
func (s *Session) noteUndo(rec wal.Record) {
	if s.txn != nil {
		s.txn.mu.Lock()
		s.txn.undo = append(s.txn.undo, rec)
		s.txn.mu.Unlock()
	}
}

// emitBinlog routes a statement's binlog event: buffered inside an open
// transaction, committed through the binlog's group-commit pipeline
// otherwise (which stamps the commit-time LSN and timestamp). The
// returned error is the durability sink's, if one is attached.
func (s *Session) emitBinlog(e *Engine, ev binlog.Event) error {
	if !e.cfg.EnableBinlog {
		return nil
	}
	if s.txn != nil {
		s.txn.mu.Lock()
		s.txn.binlogBuf = append(s.txn.binlogBuf, ev)
		s.txn.mu.Unlock()
		return nil
	}
	if err := e.binlog.Commit(ev); err != nil {
		return fmt.Errorf("engine: binlog: %w", err)
	}
	return nil
}

// InTransaction reports whether the session has an open transaction.
func (s *Session) InTransaction() bool { return s.txn != nil }

func (e *Engine) execTxnControl(s *Session, st *sqlparse.TxnControl, ts int64) (*Result, error) {
	switch st.Op {
	case sqlparse.TxnBegin:
		if s.txn != nil {
			return nil, fmt.Errorf("engine: transaction already open")
		}
		s.txn = &txnState{walTxn: e.wal.BeginTxn(), sessionID: s.ID, readOnly: s.nextTxnReadOnly}
		s.nextTxnReadOnly = false // one-shot, like MySQL's SET TRANSACTION
		e.openTxns.Add(1)
		e.mu.Lock()
		e.activeTxns[s.ID] = s.txn
		e.mu.Unlock()
		return &Result{}, nil
	case sqlparse.TxnCommit:
		if s.txn == nil {
			return nil, fmt.Errorf("engine: COMMIT without open transaction")
		}
		// The commit marker is the transaction's durability point:
		// recovery replays these changes only once it is on disk. It
		// must reach the WAL *before* the binlog flush — the historical
		// reverse order meant a crash between the two left binlog'd
		// statements the WAL would never replay, silently diverging the
		// replication stream from the recovered data. (The binlog append
		// is the crash-torture kill point covering this window.) On a
		// WAL sink failure the transaction stays open: nothing is
		// durable, and the client may retry or roll back.
		s.txn.mu.Lock()
		undo := s.txn.undo
		evs := s.txn.binlogBuf
		s.txn.binlogBuf = nil
		view := s.txn.view
		s.txn.mu.Unlock()
		if len(undo) > 0 {
			if err := e.wal.LogCommit(s.txn.walTxn); err != nil {
				return nil, fmt.Errorf("engine: wal commit: %w", err)
			}
		}
		// Flush buffered statement events with the commit timestamp as
		// one contiguous group-committed batch, as MySQL writes the
		// binlog cache at commit. The transaction is already durably
		// committed here, so a binlog failure is reported but cannot
		// reopen it — recovered data may carry statements the binlog
		// lacks, never the reverse.
		for i := range evs {
			evs[i].Timestamp = ts
		}
		binlogErr := e.binlog.CommitBatch(evs)
		e.commitVersions(s.txn.walTxn)
		if view != nil {
			e.versions.release(view)
		}
		e.mu.Lock()
		delete(e.activeTxns, s.ID)
		e.mu.Unlock()
		s.txn = nil
		e.openTxns.Add(-1)
		if binlogErr != nil {
			return nil, fmt.Errorf("engine: binlog: %w", binlogErr)
		}
		return &Result{}, nil
	case sqlparse.TxnRollback:
		if s.txn == nil {
			return nil, fmt.Errorf("engine: ROLLBACK without open transaction")
		}
		txn := s.txn
		s.txn = nil // compensations below run in autocommit mode
		e.openTxns.Add(-1)
		e.mu.Lock()
		delete(e.activeTxns, s.ID)
		e.mu.Unlock()
		txn.mu.Lock()
		undo := txn.undo
		view := txn.view
		txn.mu.Unlock()
		if view != nil {
			e.versions.release(view)
		}
		if err := e.applyUndo(txn.walTxn, undo); err != nil {
			return nil, fmt.Errorf("engine: rollback: %w", err)
		}
		// The abort marker records that the rollback ran to completion;
		// after a crash, recovery sees it and leaves the compensated
		// state alone instead of undoing a second time.
		if len(undo) > 0 {
			if err := e.wal.LogAbort(txn.walTxn); err != nil {
				return nil, fmt.Errorf("engine: wal abort: %w", err)
			}
		}
		// Resolving the rolled-back transaction in the version store
		// makes the compensated (= pre-transaction) state the visible
		// latest; the intermediate versions stay invisible to every
		// view, and purge can reclaim the chains.
		e.commitVersions(txn.walTxn)
		// MySQL reports 0 rows affected for ROLLBACK; the undo-record
		// count the engine used to report here double-counted
		// multi-column updates (one undo record per column).
		return &Result{}, nil
	default:
		return nil, fmt.Errorf("engine: unknown transaction op")
	}
}

// applyUndo reverses a transaction's changes newest-first, logging
// compensating records to the WAL under the same transaction id (as
// InnoDB does) — which is exactly why §3 notes that even aborted
// activity persists on disk.
func (e *Engine) applyUndo(txn uint64, undo []wal.Record) error {
	for i := len(undo) - 1; i >= 0; i-- {
		rec := undo[i]
		t, ok := e.TableByID(rec.Table)
		if !ok {
			return fmt.Errorf("undo references unknown table %d", rec.Table)
		}
		if err := e.undoRecord(t, txn, rec); err != nil {
			return err
		}
		e.qcache.InvalidateTable(t.Name)
	}
	return nil
}

// undoRecord reverses one undo record under the table's write latch
// (MVCC readers take no stripes, so the latch is what keeps them from
// observing a half-reversed row). Each compensation also files its
// pre-image: the rolled-back values join the version chains, where —
// as §3 predicts for aborted activity — they remain recoverable.
func (e *Engine) undoRecord(t *Table, txn uint64, rec wal.Record) error {
	t.latch.Lock()
	defer t.latch.Unlock()
	switch rec.Op {
	case wal.OpInsert:
		// Undo an insert: delete the key (fetching the row first so
		// secondary indexes can be unkeyed).
		if len(rec.Image) < 1 {
			return fmt.Errorf("corrupt insert-undo image")
		}
		key := rec.Image[0]
		row, found, err := t.Tree.Search(key)
		if err != nil {
			return err
		}
		if found {
			e.noteVersion(t, key, row, true, txn)
			if _, err := t.Tree.Delete(key); err != nil {
				return err
			}
			if err := indexDeleteRow(t, row); err != nil {
				return err
			}
			t.rows.Add(-1)
			if _, _, err := e.wal.TxDelete(txn, t.ID, storage.Record{key}); err != nil {
				return fmt.Errorf("logging compensation: %w", err)
			}
		}
	case wal.OpUpdate:
		// Undo an update: restore the old column value.
		if len(rec.Image) < 2 {
			return fmt.Errorf("corrupt update-undo image")
		}
		key, oldVal := rec.Image[0], rec.Image[1]
		cur, found, err := t.Tree.Search(key)
		if err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("undo target row %s missing", key)
		}
		col := int(rec.Column)
		if col < 0 || col >= len(cur) {
			return fmt.Errorf("undo column %d out of range", col)
		}
		e.noteVersion(t, key, cur, false, txn)
		restored := cur.Clone()
		if _, _, err := e.wal.TxUpdate(txn, t.ID, storage.Record{key}, rec.Column,
			storage.Record{cur[col]}, storage.Record{oldVal}); err != nil {
			return fmt.Errorf("logging compensation: %w", err)
		}
		if err := indexUpdateColumn(t, key, col, cur[col], oldVal); err != nil {
			return err
		}
		restored[col] = oldVal
		if _, err := t.Tree.Update(key, restored); err != nil {
			return err
		}
	case wal.OpDelete:
		// Undo a delete: reinsert the full old row.
		e.noteVersion(t, rec.Image[0], nil, false, txn)
		if err := t.Tree.Insert(rec.Image.Clone()); err != nil {
			return err
		}
		if err := indexInsertRow(t, rec.Image); err != nil {
			return err
		}
		t.rows.Add(1)
		t.statsNoteInsert(rec.Image)
		if _, _, err := e.wal.TxInsert(txn, t.ID, rec.Image); err != nil {
			return fmt.Errorf("logging compensation: %w", err)
		}
	default:
		return fmt.Errorf("unknown undo op %v", rec.Op)
	}
	return nil
}
