package engine

import (
	"fmt"
	"strings"

	"snapdb/internal/engine/exec"
	"snapdb/internal/perfschema"
	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
)

// This file is the second planning stage: turning a logical plan into a
// physical plan — an immutable operator-tree template. The template
// fixes the access path (the choice the legacy scan made per execution)
// and precomputes every operator's EXPLAIN description, so a plan-cache
// hit skips planning entirely: execution just instantiates fresh
// operators from the template and pulls.

// accessKind is the chosen scan strategy.
type accessKind int

const (
	accessFull accessKind = iota
	accessPKPoint
	accessPKRange
	accessIndex
)

// physicalPlan is the cached operator-tree template for one statement.
// It is immutable after construction (plan-cache entries are shared
// across sessions); all runtime state lives in the operators that
// instantiate builds per execution.
type physicalPlan struct {
	table *Table
	kind  accessKind
	// lo/hi are the scan bounds: primary-key values for the PK paths,
	// encoded composite keys for the secondary-index path.
	lo, hi sqlparse.Value
	ix     *SecondaryIndex
	// path is the legacy access-path label: "full-scan", "pk-range", or
	// "index:<name>".
	path string
	// presize: an unfiltered full scan pre-sizes its buffer from the
	// table's advisory row hint (read at instantiation time, as the
	// legacy scan read it per execution).
	presize bool

	preds       []exec.Pred
	whereErr    error // raised before the scan runs
	deferredErr error // raised after the scan drains

	// SELECT shape. sortCol is -1 when there is no ORDER BY *node*:
	// either the statement has none, or the access path absorbed the
	// ordering (scanRev / lookupRevCol carry the DESC variants). limit
	// is -1 for no LIMIT — LIMIT 0 is a real, empty limit. When both a
	// sort node and a limit are present the tree gets a single TopN
	// operator instead of Sort+Limit.
	agg          bool
	aggKind      sqlparse.AggKind
	aggCol       int
	proj         []int
	sortCol      int // -1 for none (or absorbed by the access path)
	sortDesc     bool
	limit        int  // -1 for none
	useTopN      bool // fold Sort+Limit into one TopN operator
	scanRev      bool // PK-order DESC: leaf emits its buffer reversed
	lookupRevCol int  // index-order DESC: KeyLookup group-reverse column, -1 off

	// UPDATE shape.
	sets []setOp

	// Precomputed operator descriptions (EXPLAIN and events_stages).
	dScan, dLookup, dFilter, dSort, dTopN, dAgg, dProj, dLimit string
}

// indexesOf snapshots t's secondary-index list under the catalog lock.
// Plan construction runs outside the statement's table lock, and CREATE
// INDEX appends to the slice under e.mu; the copy keeps the planner's
// iteration race-free (a racing DDL bumps the plan epoch, so a stale
// choice lasts at most one execution).
func (e *Engine) indexesOf(t *Table) []*SecondaryIndex {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]*SecondaryIndex(nil), t.Indexes...)
}

// buildAccess chooses the access path for a lowered scan and fills the
// scan-related template fields, replicating the legacy selection order:
// primary-key bounds first, then the first secondary index (by name)
// with a bounded predicate, else a full scan.
func (e *Engine) buildAccess(pp *physicalPlan, ls logicalScan) {
	t := ls.table
	pp.table = t
	pp.preds = ls.preds
	pp.whereErr = ls.whereErr
	pkName := t.Columns[t.PKIndex].Name
	if len(ls.where) > 0 {
		pp.dFilter = "Filter: " + ls.where.SQL()
	}
	if lo, hi, ok := pkBounds(t, ls.where); ok {
		pp.lo, pp.hi = lo, hi
		pp.path = "pk-range"
		if lo.Equal(hi) {
			pp.kind = accessPKPoint
			pp.dScan = fmt.Sprintf("Point scan on %s using PRIMARY (%s = %s) (access=pk-range)",
				t.Name, pkName, lo.SQL())
		} else {
			pp.kind = accessPKRange
			pp.dScan = fmt.Sprintf("Range scan on %s using PRIMARY (%s between %s and %s) (access=pk-range)",
				t.Name, pkName, lo.SQL(), hi.SQL())
		}
		return
	}
	if ix, lo, hi, ok := indexBounds(e.indexesOf(t), ls.where); ok {
		pp.kind = accessIndex
		pp.ix = ix
		pp.lo, pp.hi = indexValueBounds(lo, hi)
		pp.path = "index:" + ix.Name
		pp.dScan = fmt.Sprintf("Index range scan on %s using %s (%s between %s and %s) (access=index:%s)",
			t.Name, ix.Name, ix.Column, lo.SQL(), hi.SQL(), ix.Name)
		pp.dLookup = fmt.Sprintf("Key lookup on %s via %s", t.Name, ix.Name)
		return
	}
	pp.kind = accessFull
	pp.path = "full-scan"
	pp.presize = len(ls.where) == 0
	pp.dScan = fmt.Sprintf("Table scan on %s (access=full-scan)", t.Name)
}

// orderFromAccess reports whether the chosen access path already
// yields rows in the requested ORDER BY order, and records the
// reversal the DESC variants need. The key property in every case is
// that the B+ tree traversal still runs forward — reversal happens on
// the buffered rows (scanRev) or on the emission order of resolved
// lookups (lookupRevCol) — so the page-fetch sequence is identical to
// the Sort-based plan's.
func (pp *physicalPlan) orderFromAccess(sortCol int, sortDesc bool) bool {
	t := pp.table
	switch pp.kind {
	case accessFull, accessPKRange:
		// The clustered tree emits primary-key ASC; keys are unique, so
		// an exact reversal is a stable descending sort.
		if sortCol != t.PKIndex {
			return false
		}
		pp.scanRev = sortDesc
		return true
	case accessPKPoint:
		// At most one row: any order is satisfied.
		return sortCol == t.PKIndex
	case accessIndex:
		// The index leaf emits (value ASC, pk ASC) — exactly the stable
		// ascending order. DESC is produced by the KeyLookup emitting
		// equal-value groups in reverse group order.
		if sortCol != pp.ix.colIdx {
			return false
		}
		if sortDesc {
			pp.lookupRevCol = sortCol
		}
		return true
	}
	return false
}

// buildSelectPlan lowers and templates a SELECT.
func (e *Engine) buildSelectPlan(t *Table, st *sqlparse.Select) *physicalPlan {
	lp := lowerSelect(t, st)
	pp := &physicalPlan{sortCol: -1, aggCol: -1, lookupRevCol: -1, limit: -1}
	e.buildAccess(pp, lp.scan)
	pp.deferredErr = lp.deferredErr
	if lp.deferredErr != nil {
		return pp
	}
	if lp.agg {
		pp.agg = true
		pp.aggKind = lp.aggExpr.Agg
		pp.aggCol = lp.aggCol
		pp.dAgg = "Aggregate: " + lp.aggExpr.SQL()
		if lp.limit >= 0 {
			pp.limit = lp.limit
			pp.dLimit = fmt.Sprintf("Limit: %d", lp.limit)
		}
		return pp
	}
	pp.proj = lp.proj
	cols := make([]string, len(lp.proj))
	for i, idx := range lp.proj {
		cols[i] = t.Columns[idx].Name
	}
	pp.dProj = "Project: " + strings.Join(cols, ", ")
	if lp.limit >= 0 {
		pp.limit = lp.limit
	}
	if lp.sortCol >= 0 {
		dir := "ASC"
		if lp.sortDesc {
			dir = "DESC"
		}
		name := t.Columns[lp.sortCol].Name
		switch {
		case !e.cfg.DisableSortOptimizations && pp.orderFromAccess(lp.sortCol, lp.sortDesc):
			// The access path absorbs the ordering: no sort node at all.
			// EXPLAIN shows the leaf carrying it.
			pp.dScan = strings.TrimSuffix(pp.dScan, ")") + fmt.Sprintf(", order=%s %s)", name, dir)
		case !e.cfg.DisableSortOptimizations && lp.limit >= 0:
			// LIMIT over ORDER BY: one bounded-heap TopN replaces
			// Sort+Limit.
			pp.sortCol = lp.sortCol
			pp.sortDesc = lp.sortDesc
			pp.useTopN = true
			pp.dTopN = fmt.Sprintf("Top-N sort: %s %s (limit %d)", name, dir, lp.limit)
		default:
			pp.sortCol = lp.sortCol
			pp.sortDesc = lp.sortDesc
			pp.dSort = fmt.Sprintf("Sort: %s %s", name, dir)
		}
	}
	// A Limit node exists only when no TopN carries the limit: absorbed
	// ordering, plain LIMIT without ORDER BY, or sort optimizations off.
	if pp.limit >= 0 && !pp.useTopN {
		pp.dLimit = fmt.Sprintf("Limit: %d", pp.limit)
	}
	return pp
}

// buildUpdatePlan lowers and templates an UPDATE's scan half.
func (e *Engine) buildUpdatePlan(t *Table, st *sqlparse.Update) *physicalPlan {
	lm := lowerUpdate(t, st)
	pp := &physicalPlan{sortCol: -1, aggCol: -1, lookupRevCol: -1, limit: -1}
	e.buildAccess(pp, lm.scan)
	pp.deferredErr = lm.deferredErr
	pp.sets = lm.sets
	return pp
}

// buildDeletePlan lowers and templates a DELETE's scan half.
func (e *Engine) buildDeletePlan(t *Table, st *sqlparse.Delete) *physicalPlan {
	lm := lowerDelete(t, st)
	pp := &physicalPlan{sortCol: -1, aggCol: -1, lookupRevCol: -1, limit: -1}
	e.buildAccess(pp, lm.scan)
	return pp
}

// physSelect returns the statement's physical template, reusing the
// plan-cache binding when it was resolved against t (epoch invalidation
// keeps it current), else building fresh.
func (e *Engine) physSelect(pl *plan, t *Table, st *sqlparse.Select) *physicalPlan {
	if pl != nil && pl.bind.table == t && pl.bind.phys != nil {
		return pl.bind.phys
	}
	return e.buildSelectPlan(t, st)
}

// physUpdate is physSelect for UPDATE.
func (e *Engine) physUpdate(pl *plan, t *Table, st *sqlparse.Update) *physicalPlan {
	if pl != nil && pl.bind.table == t && pl.bind.phys != nil {
		return pl.bind.phys
	}
	return e.buildUpdatePlan(t, st)
}

// physDelete is physSelect for DELETE.
func (e *Engine) physDelete(pl *plan, t *Table, st *sqlparse.Delete) *physicalPlan {
	if pl != nil && pl.bind.table == t && pl.bind.phys != nil {
		return pl.bind.phys
	}
	return e.buildDeletePlan(t, st)
}

// opNode is one operator of an instantiated plan with its tree depth.
type opNode struct {
	op    exec.Operator
	depth int
}

// maxPlanDepth is the deepest operator chain a template can produce:
// scan + key lookup + filter + sort + project + limit. The fixed
// buffers below are sized to it so instantiation never allocates for
// the tree bookkeeping.
const maxPlanDepth = 6

// planInstance is one execution's operator tree: fresh operators built
// from the shared template. The operator structs are embedded by value
// so the whole tree is a single allocation — instantiate wires the
// interface fields at the embedded storage, initializing only the
// operators the template calls for. A planInstance must never be
// copied by value (nodes and the operator inputs point into it).
type planInstance struct {
	root  exec.Operator
	leaf  exec.Operator // the bottom scan; its RowsExamined is the statement's
	nodes []opNode      // root first, backed by nodeBuf

	fullScan  exec.FullScan
	pointScan exec.IndexPointScan
	rangeScan exec.IndexRangeScan
	lookup    exec.KeyLookup
	filter    exec.Filter
	sort      exec.Sort
	topn      exec.TopN
	agg       exec.Aggregate
	proj      exec.Project
	limit     exec.Limit

	nodeBuf  [maxPlanDepth]opNode
	stageBuf [maxPlanDepth]perfschema.StageEvent
}

// instantiate builds fresh operators from the template. fc (may be nil)
// lets the scan leaves attribute buffer-pool fetches per operator.
func (pp *physicalPlan) instantiate(fc exec.FetchCounter) *planInstance {
	t := pp.table
	pi := &planInstance{}
	var leaf exec.Operator
	switch pp.kind {
	case accessPKPoint:
		pi.pointScan.Init(t.Tree, pp.lo, pp.dScan, fc)
		leaf = &pi.pointScan
	case accessPKRange:
		pi.rangeScan.Init(t.Tree, pp.lo, pp.hi, pp.scanRev, pp.dScan, fc)
		leaf = &pi.rangeScan
	case accessIndex:
		pi.rangeScan.Init(pp.ix.Tree, pp.lo, pp.hi, false, pp.dScan, fc)
		leaf = &pi.rangeScan
	default:
		var hint int64
		if pp.presize {
			hint = t.rows.Load()
		}
		pi.fullScan.Init(t.Tree, hint, pp.scanRev, pp.dScan, fc)
		leaf = &pi.fullScan
	}
	root := leaf
	if pp.kind == accessIndex {
		pi.lookup.Init(root, t.Tree, pp.ix.Name, pp.dLookup, pp.lookupRevCol, fc)
		root = &pi.lookup
	}
	if len(pp.preds) > 0 {
		pi.filter.Init(root, pp.preds, pp.dFilter)
		root = &pi.filter
	}
	// A plan with a deferred resolution error carries only its scan
	// subtree: the driver drains it (for the legacy fetch sequence) and
	// then raises the error, so the upper operators never exist.
	if pp.deferredErr == nil {
		switch {
		case pp.agg:
			pi.agg.Init(root, pp.aggKind, pp.aggCol, pp.dAgg)
			root = &pi.agg
			if pp.limit >= 0 {
				pi.limit.Init(root, pp.limit, pp.dLimit)
				root = &pi.limit
			}
		case pp.proj != nil:
			switch {
			case pp.useTopN:
				pi.topn.Init(root, pp.sortCol, pp.sortDesc, pp.limit, pp.dTopN)
				root = &pi.topn
			case pp.sortCol >= 0:
				pi.sort.Init(root, pp.sortCol, pp.sortDesc, pp.dSort)
				root = &pi.sort
			}
			pi.proj.Init(root, pp.proj, pp.dProj)
			root = &pi.proj
			if pp.limit >= 0 && !pp.useTopN {
				pi.limit.Init(root, pp.limit, pp.dLimit)
				root = &pi.limit
			}
		}
	}
	pi.root, pi.leaf = root, leaf
	pi.nodes = pi.nodeBuf[:0]
	depth := 0
	for op := root; op != nil; depth++ {
		pi.nodes = append(pi.nodes, opNode{op, depth})
		ch := op.Children()
		if len(ch) == 0 {
			break
		}
		op = ch[0]
	}
	return pi
}

// armDeadline installs the statement-deadline check on the scan leaf.
// Only the leaf runs an unbounded loop (its Open-time traversal), so
// arming it bounds the whole tree; a nil check is a no-op, keeping the
// no-timeout path identical to the pre-deadline executor.
func (pi *planInstance) armDeadline(dc exec.DeadlineCheck) {
	if dc == nil {
		return
	}
	if da, ok := pi.leaf.(interface{ SetDeadlineCheck(exec.DeadlineCheck) }); ok {
		da.SetDeadlineCheck(dc)
	}
}

// drain runs the tree to completion via the Volcano protocol and
// returns the root's rows.
func (pi *planInstance) drain() ([]storage.Record, error) {
	if err := pi.root.Open(); err != nil {
		_ = pi.root.Close()
		return nil, err
	}
	var rows []storage.Record
	for {
		r, ok, err := pi.root.Next()
		if err != nil {
			_ = pi.root.Close()
			return nil, err
		}
		if !ok {
			break
		}
		rows = append(rows, r)
	}
	return rows, pi.root.Close()
}

// examined returns the scan leaf's rows-examined count — the legacy
// RowsExamined semantics (index paths count index entries).
func (pi *planInstance) examined() int { return pi.leaf.Stats().RowsExamined }

// stages snapshots every operator's runtime counters for the
// events_stages surface, root first. Thread/timestamp/digest are
// stamped by perfschema.AddStages. The returned slice is backed by the
// instance's stageBuf — AddStages copies the group into the history
// ring, so the ring never aliases (or retains) the planInstance.
func (pi *planInstance) stages() []perfschema.StageEvent {
	out := pi.stageBuf[:len(pi.nodes)]
	for i, n := range pi.nodes {
		st := n.op.Stats()
		out[i] = perfschema.StageEvent{
			Seq:          i,
			Depth:        n.depth,
			Operator:     n.op.Describe(),
			RowsExamined: st.RowsExamined,
			RowsReturned: st.RowsReturned,
			PoolFetches:  st.PoolFetches,
		}
	}
	return out
}
