package engine

import (
	"fmt"
	"math"
	"strings"
	"time"

	"snapdb/internal/engine/exec"
	"snapdb/internal/perfschema"
	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
)

// This file is the second planning stage: turning a logical plan into a
// physical plan — an immutable operator-tree template. The template
// fixes the access path (the choice the legacy scan made per execution)
// and precomputes every operator's EXPLAIN description, so a plan-cache
// hit skips planning entirely: execution just instantiates fresh
// operators from the template and pulls.

// Cost model. Costs are abstract row-visit units fed by the planner
// statistics (stats.go): a sequential clustered row costs 1, an index
// entry slightly less (smaller records, denser pages), and every index
// match pays a clustered key lookup on top. With no ANALYZE on record
// the selectivity defaults below stand in — deliberately the same
// shape MySQL's pre-histogram planner used.
const (
	costSeqRow     = 1.0 // one clustered row visited sequentially
	costIndexEntry = 0.9 // one secondary-index entry visited
	costKeyLookup  = 1.0 // one clustered lookup resolving an index entry

	defaultEqSelectivity    = 0.10 // `col = ?` with no distinct count
	defaultRangeSelectivity = 0.25 // bounded range with no min/max

	// costFullScanMinRows is the small-table floor: below it a bounded
	// index always wins, exactly as the first-match planner chose. A
	// table this small fits in a handful of pages either way, and the
	// floor keeps estimate noise from flipping access paths (and
	// therefore fetch traces) on the many small fixtures the
	// differential suites replay.
	costFullScanMinRows = 64
)

// DefaultParallelScanMinRows is the estimated-row floor below which a
// scan is never split across workers (Config.ParallelScanMinRows).
const DefaultParallelScanMinRows = 4096

// maxScanPartitions caps how many partitions one scan fans out into no
// matter what Config.MaxScanWorkers says.
const maxScanPartitions = 16

// accessKind is the chosen scan strategy.
type accessKind int

const (
	accessFull accessKind = iota
	accessPKPoint
	accessPKRange
	accessIndex
)

// physicalPlan is the cached operator-tree template for one statement.
// It is immutable after construction (plan-cache entries are shared
// across sessions); all runtime state lives in the operators that
// instantiate builds per execution.
type physicalPlan struct {
	table *Table
	kind  accessKind
	// lo/hi are the scan bounds: primary-key values for the PK paths,
	// encoded composite keys for the secondary-index path.
	lo, hi sqlparse.Value
	ix     *SecondaryIndex
	// path is the legacy access-path label: "full-scan", "pk-range", or
	// "index:<name>".
	path string
	// presize: an unfiltered full scan pre-sizes its buffer from the
	// table's advisory row hint (read at instantiation time, as the
	// legacy scan read it per execution).
	presize bool

	preds       []exec.Pred
	whereErr    error // raised before the scan runs
	deferredErr error // raised after the scan drains

	// SELECT shape. sortCol is -1 when there is no ORDER BY *node*:
	// either the statement has none, or the access path absorbed the
	// ordering (scanRev / lookupRevCol carry the DESC variants). limit
	// is -1 for no LIMIT — LIMIT 0 is a real, empty limit. When both a
	// sort node and a limit are present the tree gets a single TopN
	// operator instead of Sort+Limit.
	agg          bool
	aggKind      sqlparse.AggKind
	aggCol       int
	proj         []int
	sortCol      int // -1 for none (or absorbed by the access path)
	sortDesc     bool
	limit        int  // -1 for none
	useTopN      bool // fold Sort+Limit into one TopN operator
	scanRev      bool // PK-order DESC: leaf emits its buffer reversed
	lookupRevCol int  // index-order DESC: KeyLookup group-reverse column, -1 off

	// UPDATE shape.
	sets []setOp

	// Cost-model outputs for the chosen path, computed at plan-build
	// time from the then-current statistics. They feed EXPLAIN and
	// EXPLAIN ANALYZE only — never the operator descriptions, which
	// are shared with the events_stages surface and must not vary with
	// statistics drift between a cached template and a fresh build.
	estRows int64
	estCost float64

	// Parallel-scan template knobs (buildSelectPlan sets them when the
	// statement is eligible; zero parWorkers keeps the scan serial).
	// The split itself happens at instantiate time from live state, so
	// a cached template and a fresh build partition identically.
	parWorkers int
	parMinRows int64

	// scanIOWait is Config.SimulatedScanIOWait, armed on the scan
	// leaves at instantiation.
	scanIOWait time.Duration

	// Precomputed operator descriptions (EXPLAIN and events_stages).
	dScan, dLookup, dFilter, dSort, dTopN, dAgg, dProj, dLimit string
}

// setEst records the chosen path's estimates.
func (pp *physicalPlan) setEst(rows, cost float64) {
	pp.estRows = int64(rows + 0.5)
	pp.estCost = cost
}

// indexesOf snapshots t's secondary-index list under the catalog lock.
// Plan construction runs outside the statement's table lock, and CREATE
// INDEX appends to the slice under e.mu; the copy keeps the planner's
// iteration race-free (a racing DDL bumps the plan epoch, so a stale
// choice lasts at most one execution).
func (e *Engine) indexesOf(t *Table) []*SecondaryIndex {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]*SecondaryIndex(nil), t.Indexes...)
}

// estIndexRows estimates how many rows of t fall in [lo, hi] on column
// colIdx. Analyzed tables use the column's distinct count (equality)
// or min/max bounds (INT ranges, interpolated uniformly); everything
// else falls back to the default selectivities.
func estIndexRows(t *Table, colIdx int, lo, hi sqlparse.Value, eq bool, n int64) float64 {
	cs, analyzed := t.statsFor(colIdx)
	nf := float64(n)
	if eq {
		if analyzed && cs.Distinct > 0 {
			return nf / float64(cs.Distinct)
		}
		if est := defaultEqSelectivity * nf; est > 1 {
			return est
		}
		return 1
	}
	if analyzed && cs.HaveMinMax && lo.IsInt && hi.IsInt {
		loC, hiC := lo.Int, hi.Int
		if loC < cs.Min {
			loC = cs.Min
		}
		if hiC > cs.Max {
			hiC = cs.Max
		}
		if hiC < loC {
			return 0
		}
		span := float64(cs.Max) - float64(cs.Min) + 1
		if span <= 0 {
			return defaultRangeSelectivity * nf
		}
		return (float64(hiC) - float64(loC) + 1) / span * nf
	}
	return defaultRangeSelectivity * nf
}

// buildAccess chooses the access path for a lowered scan and fills the
// scan-related template fields. Primary-key bounds always win (the
// clustered tree serves them with no lookup step); after that the
// planner scores every secondary index with a bounded predicate by
// estimated matching rows and weighs the best against a full scan —
// replacing the old first-matching-index-wins rule. On estimate ties
// the lowest index name wins, which is exactly the order the
// first-match rule used, and below the small-table floor a bounded
// index always wins, so never-analyzed fixtures plan as they always
// did. DisableCostBasedPlanner restores first-match outright.
func (e *Engine) buildAccess(pp *physicalPlan, ls logicalScan) {
	t := ls.table
	pp.table = t
	pp.preds = ls.preds
	pp.whereErr = ls.whereErr
	pp.scanIOWait = e.cfg.SimulatedScanIOWait
	pkName := t.Columns[t.PKIndex].Name
	if len(ls.where) > 0 {
		pp.dFilter = "Filter: " + ls.where.SQL()
	}
	n := t.rows.Load()
	if lo, hi, ok := pkBounds(t, ls.where); ok {
		pp.lo, pp.hi = lo, hi
		pp.path = "pk-range"
		if lo.Equal(hi) {
			pp.kind = accessPKPoint
			pp.setEst(1, costSeqRow)
			pp.dScan = fmt.Sprintf("Point scan on %s using PRIMARY (%s = %s) (access=pk-range)",
				t.Name, pkName, lo.SQL())
		} else {
			pp.kind = accessPKRange
			est := estIndexRows(t, t.PKIndex, lo, hi, false, n)
			pp.setEst(est, costSeqRow*est)
			pp.dScan = fmt.Sprintf("Range scan on %s using PRIMARY (%s between %s and %s) (access=pk-range)",
				t.Name, pkName, lo.SQL(), hi.SQL())
		}
		return
	}
	var (
		best           *SecondaryIndex
		bestLo, bestHi sqlparse.Value
		bestEst        float64
	)
	if e.cfg.DisableCostBasedPlanner {
		if ix, lo, hi, ok := indexBounds(e.indexesOf(t), ls.where); ok {
			best, bestLo, bestHi = ix, lo, hi
			bestEst = estIndexRows(t, ix.colIdx, lo, hi, lo.Equal(hi), n)
		}
	} else {
		for _, ix := range e.indexesOf(t) {
			lo, hi, eq, ok := indexBoundsFor(ix, ls.where)
			if !ok {
				continue
			}
			est := estIndexRows(t, ix.colIdx, lo, hi, eq, n)
			if best == nil || est < bestEst {
				best, bestLo, bestHi, bestEst = ix, lo, hi, est
			}
		}
	}
	if best != nil {
		idxCost := bestEst * (costIndexEntry + costKeyLookup)
		if e.cfg.DisableCostBasedPlanner || n < costFullScanMinRows ||
			idxCost <= float64(n)*costSeqRow {
			pp.kind = accessIndex
			pp.ix = best
			pp.lo, pp.hi = indexValueBounds(bestLo, bestHi)
			pp.path = "index:" + best.Name
			pp.setEst(bestEst, idxCost)
			pp.dScan = fmt.Sprintf("Index range scan on %s using %s (%s between %s and %s) (access=index:%s)",
				t.Name, best.Name, best.Column, bestLo.SQL(), bestHi.SQL(), best.Name)
			pp.dLookup = fmt.Sprintf("Key lookup on %s via %s", t.Name, best.Name)
			return
		}
	}
	pp.kind = accessFull
	pp.path = "full-scan"
	pp.presize = len(ls.where) == 0
	est := float64(n)
	if est < 1 {
		est = 1
	}
	pp.setEst(est, float64(n)*costSeqRow)
	pp.dScan = fmt.Sprintf("Table scan on %s (access=full-scan)", t.Name)
}

// orderFromAccess reports whether the chosen access path already
// yields rows in the requested ORDER BY order, and records the
// reversal the DESC variants need. The key property in every case is
// that the B+ tree traversal still runs forward — reversal happens on
// the buffered rows (scanRev) or on the emission order of resolved
// lookups (lookupRevCol) — so the page-fetch sequence is identical to
// the Sort-based plan's.
func (pp *physicalPlan) orderFromAccess(sortCol int, sortDesc bool) bool {
	t := pp.table
	switch pp.kind {
	case accessFull, accessPKRange:
		// The clustered tree emits primary-key ASC; keys are unique, so
		// an exact reversal is a stable descending sort.
		if sortCol != t.PKIndex {
			return false
		}
		pp.scanRev = sortDesc
		return true
	case accessPKPoint:
		// At most one row: any order is satisfied.
		return sortCol == t.PKIndex
	case accessIndex:
		// The index leaf emits (value ASC, pk ASC) — exactly the stable
		// ascending order. DESC is produced by the KeyLookup emitting
		// equal-value groups in reverse group order.
		if sortCol != pp.ix.colIdx {
			return false
		}
		if sortDesc {
			pp.lookupRevCol = sortCol
		}
		return true
	}
	return false
}

// markParallel flags a SELECT template as eligible for the parallel
// partitioned scan: a forward clustered full/range scan over an INT
// primary key, with parallelism switched on. Only the knobs land in
// the template — the partition split itself happens at instantiate
// time from live state (row count, statistics bounds), so a cached
// template and a fresh build fan out identically. UPDATE/DELETE scans
// stay serial: their scan half runs under the exclusive table lock and
// feeds a mutation loop that wants the dispatch goroutine to itself.
func (e *Engine) markParallel(pp *physicalPlan) {
	if e.cfg.DisableParallelScan || e.cfg.MaxScanWorkers < 2 {
		return
	}
	if pp.kind != accessFull && pp.kind != accessPKRange {
		return
	}
	if pp.scanRev || pp.whereErr != nil {
		return
	}
	t := pp.table
	if t.Columns[t.PKIndex].Type != sqlparse.TypeInt {
		return
	}
	if pp.kind == accessPKRange && (!pp.lo.IsInt || !pp.hi.IsInt) {
		return
	}
	pp.parWorkers = e.cfg.MaxScanWorkers
	if pp.parWorkers > maxScanPartitions {
		pp.parWorkers = maxScanPartitions
	}
	pp.parMinRows = e.cfg.ParallelScanMinRows
}

// buildSelectPlan lowers and templates a SELECT.
func (e *Engine) buildSelectPlan(t *Table, st *sqlparse.Select) *physicalPlan {
	lp := lowerSelect(t, st)
	pp := &physicalPlan{sortCol: -1, aggCol: -1, lookupRevCol: -1, limit: -1}
	e.buildAccess(pp, lp.scan)
	pp.deferredErr = lp.deferredErr
	if lp.deferredErr != nil {
		e.markParallel(pp)
		return pp
	}
	if lp.agg {
		pp.agg = true
		pp.aggKind = lp.aggExpr.Agg
		pp.aggCol = lp.aggCol
		pp.dAgg = "Aggregate: " + lp.aggExpr.SQL()
		if lp.limit >= 0 {
			pp.limit = lp.limit
			pp.dLimit = fmt.Sprintf("Limit: %d", lp.limit)
		}
		e.markParallel(pp)
		return pp
	}
	pp.proj = lp.proj
	cols := make([]string, len(lp.proj))
	for i, idx := range lp.proj {
		cols[i] = t.Columns[idx].Name
	}
	pp.dProj = "Project: " + strings.Join(cols, ", ")
	if lp.limit >= 0 {
		pp.limit = lp.limit
	}
	if lp.sortCol >= 0 {
		dir := "ASC"
		if lp.sortDesc {
			dir = "DESC"
		}
		name := t.Columns[lp.sortCol].Name
		switch {
		case !e.cfg.DisableSortOptimizations && pp.orderFromAccess(lp.sortCol, lp.sortDesc):
			// The access path absorbs the ordering: no sort node at all.
			// EXPLAIN shows the leaf carrying it.
			pp.dScan = strings.TrimSuffix(pp.dScan, ")") + fmt.Sprintf(", order=%s %s)", name, dir)
		case !e.cfg.DisableSortOptimizations && lp.limit >= 0:
			// LIMIT over ORDER BY: one bounded-heap TopN replaces
			// Sort+Limit.
			pp.sortCol = lp.sortCol
			pp.sortDesc = lp.sortDesc
			pp.useTopN = true
			pp.dTopN = fmt.Sprintf("Top-N sort: %s %s (limit %d)", name, dir, lp.limit)
		default:
			pp.sortCol = lp.sortCol
			pp.sortDesc = lp.sortDesc
			pp.dSort = fmt.Sprintf("Sort: %s %s", name, dir)
		}
	}
	// A Limit node exists only when no TopN carries the limit: absorbed
	// ordering, plain LIMIT without ORDER BY, or sort optimizations off.
	if pp.limit >= 0 && !pp.useTopN {
		pp.dLimit = fmt.Sprintf("Limit: %d", pp.limit)
	}
	// After the sort absorption decisions: eligibility depends on the
	// final scanRev.
	e.markParallel(pp)
	return pp
}

// buildUpdatePlan lowers and templates an UPDATE's scan half.
func (e *Engine) buildUpdatePlan(t *Table, st *sqlparse.Update) *physicalPlan {
	lm := lowerUpdate(t, st)
	pp := &physicalPlan{sortCol: -1, aggCol: -1, lookupRevCol: -1, limit: -1}
	e.buildAccess(pp, lm.scan)
	pp.deferredErr = lm.deferredErr
	pp.sets = lm.sets
	return pp
}

// buildDeletePlan lowers and templates a DELETE's scan half.
func (e *Engine) buildDeletePlan(t *Table, st *sqlparse.Delete) *physicalPlan {
	lm := lowerDelete(t, st)
	pp := &physicalPlan{sortCol: -1, aggCol: -1, lookupRevCol: -1, limit: -1}
	e.buildAccess(pp, lm.scan)
	return pp
}

// physSelect returns the statement's physical template, reusing the
// plan-cache binding when it was resolved against t (epoch invalidation
// keeps it current), else building fresh.
func (e *Engine) physSelect(pl *plan, t *Table, st *sqlparse.Select) *physicalPlan {
	if pl != nil && pl.bind.table == t && pl.bind.phys != nil {
		return pl.bind.phys
	}
	return e.buildSelectPlan(t, st)
}

// physUpdate is physSelect for UPDATE.
func (e *Engine) physUpdate(pl *plan, t *Table, st *sqlparse.Update) *physicalPlan {
	if pl != nil && pl.bind.table == t && pl.bind.phys != nil {
		return pl.bind.phys
	}
	return e.buildUpdatePlan(t, st)
}

// physDelete is physSelect for DELETE.
func (e *Engine) physDelete(pl *plan, t *Table, st *sqlparse.Delete) *physicalPlan {
	if pl != nil && pl.bind.table == t && pl.bind.phys != nil {
		return pl.bind.phys
	}
	return e.buildDeletePlan(t, st)
}

// opNode is one operator of an instantiated plan with its tree depth.
type opNode struct {
	op    exec.Operator
	depth int
}

// maxPlanDepth is the deepest operator chain a template can produce:
// scan + key lookup + filter + sort + project + limit. The fixed
// buffers below are sized to it so instantiation never allocates for
// the tree bookkeeping.
const maxPlanDepth = 6

// planInstance is one execution's operator tree: fresh operators built
// from the shared template. The operator structs are embedded by value
// so the whole tree is a single allocation — instantiate wires the
// interface fields at the embedded storage, initializing only the
// operators the template calls for. A planInstance must never be
// copied by value (nodes and the operator inputs point into it).
type planInstance struct {
	root  exec.Operator
	leaf  exec.Operator // the bottom scan; its RowsExamined is the statement's
	nodes []opNode      // root first, backed by nodeBuf

	fullScan  exec.FullScan
	pointScan exec.IndexPointScan
	rangeScan exec.IndexRangeScan
	lookup    exec.KeyLookup
	filter    exec.Filter
	sort      exec.Sort
	topn      exec.TopN
	agg       exec.Aggregate
	proj      exec.Project
	limit     exec.Limit

	nodeBuf  [maxPlanDepth]opNode
	stageBuf [maxPlanDepth]perfschema.StageEvent
}

// buildParallel decides, from live state, whether this execution fans
// the clustered scan out across partition workers, and builds the
// ParallelScan leaf if so. Returning nil keeps the scan serial. The
// split points come from statistics (full scan) or the scan's own
// bounds (pk-range), but the *outer* partition edges always extend to
// the scan's true bounds — the key-space extremes for a full scan — so
// stale statistics can only unbalance the partitions, never drop keys.
// Everything read here (row count, stats bounds) is live, so a cached
// template and a fresh build of the same statement partition
// identically at the same execution point.
func (pp *physicalPlan) buildParallel(fc exec.FetchCounter) *exec.ParallelScan {
	if pp.parWorkers < 2 {
		return nil
	}
	t := pp.table
	n := t.rows.Load()
	if n < pp.parMinRows {
		return nil
	}
	var outerLo, outerHi, splitLo, splitHi int64
	if pp.kind == accessPKRange {
		outerLo, outerHi = pp.lo.Int, pp.hi.Int
		splitLo, splitHi = outerLo, outerHi
	} else {
		cs, analyzed := t.statsFor(t.PKIndex)
		if !analyzed || !cs.HaveMinMax {
			// No key-space bounds to split on: a full scan fans out only
			// on analyzed tables.
			return nil
		}
		outerLo, outerHi = math.MinInt64, math.MaxInt64
		splitLo, splitHi = cs.Min, cs.Max
	}
	k := pp.parWorkers
	span := uint64(splitHi) - uint64(splitLo) // two's complement: correct for any int64 pair
	if splitHi <= splitLo || span < uint64(k) {
		return nil
	}
	step := span / uint64(k)
	pkName := t.Columns[t.PKIndex].Name
	parts := make([]exec.PartitionScan, k)
	lo := outerLo
	for i := 0; i < k; i++ {
		hi := outerHi
		if i < k-1 {
			hi = int64(uint64(splitLo)+uint64(i+1)*step) - 1
		}
		desc := fmt.Sprintf("Partition %d/%d on %s (%s between %d and %d)",
			i+1, k, t.Name, pkName, lo, hi)
		parts[i].Init(t.Tree,
			sqlparse.Value{IsInt: true, Int: lo},
			sqlparse.Value{IsInt: true, Int: hi}, desc)
		lo = hi + 1
	}
	desc := fmt.Sprintf("Parallel scan on %s (workers=%d) (access=%s)", t.Name, k, pp.path)
	par := new(exec.ParallelScan)
	par.Init(desc, parts, n, fc)
	return par
}

// instantiate builds fresh operators from the template. fc (may be nil)
// lets the scan leaves attribute buffer-pool fetches per operator.
func (pp *physicalPlan) instantiate(fc exec.FetchCounter) *planInstance {
	return pp.instantiateOpts(fc, false)
}

// instantiateOpts is instantiate with a serial override: an MVCC read
// carrying a version filter pins the scan to the serial leaves, where
// the visibility hooks live — a filtered scan never fans out across
// partition workers.
func (pp *physicalPlan) instantiateOpts(fc exec.FetchCounter, serial bool) *planInstance {
	t := pp.table
	pi := &planInstance{}
	var leaf exec.Operator
	switch pp.kind {
	case accessPKPoint:
		pi.pointScan.Init(t.Tree, pp.lo, pp.dScan, fc)
		leaf = &pi.pointScan
	case accessPKRange:
		var par *exec.ParallelScan
		if !serial {
			par = pp.buildParallel(fc)
		}
		if par != nil {
			leaf = par
		} else {
			pi.rangeScan.Init(t.Tree, pp.lo, pp.hi, pp.scanRev, pp.dScan, fc)
			leaf = &pi.rangeScan
		}
	case accessIndex:
		pi.rangeScan.Init(pp.ix.Tree, pp.lo, pp.hi, false, pp.dScan, fc)
		leaf = &pi.rangeScan
	default:
		var par *exec.ParallelScan
		if !serial {
			par = pp.buildParallel(fc)
		}
		if par != nil {
			leaf = par
		} else {
			var hint int64
			if pp.presize {
				hint = t.rows.Load()
			}
			pi.fullScan.Init(t.Tree, hint, pp.scanRev, pp.dScan, fc)
			leaf = &pi.fullScan
		}
	}
	if pp.scanIOWait > 0 {
		if sw, ok := leaf.(interface{ SetSimulatedIOWait(time.Duration) }); ok {
			sw.SetSimulatedIOWait(pp.scanIOWait)
		}
	}
	root := leaf
	if pp.kind == accessIndex {
		pi.lookup.Init(root, t.Tree, pp.ix.Name, pp.dLookup, pp.lookupRevCol, fc)
		root = &pi.lookup
	}
	if len(pp.preds) > 0 {
		pi.filter.Init(root, pp.preds, pp.dFilter)
		root = &pi.filter
	}
	// A plan with a deferred resolution error carries only its scan
	// subtree: the driver drains it (for the legacy fetch sequence) and
	// then raises the error, so the upper operators never exist.
	if pp.deferredErr == nil {
		switch {
		case pp.agg:
			pi.agg.Init(root, pp.aggKind, pp.aggCol, pp.dAgg)
			root = &pi.agg
			if pp.limit >= 0 {
				pi.limit.Init(root, pp.limit, pp.dLimit)
				root = &pi.limit
			}
		case pp.proj != nil:
			switch {
			case pp.useTopN:
				pi.topn.Init(root, pp.sortCol, pp.sortDesc, pp.limit, pp.dTopN)
				root = &pi.topn
			case pp.sortCol >= 0:
				pi.sort.Init(root, pp.sortCol, pp.sortDesc, pp.dSort)
				root = &pi.sort
			}
			pi.proj.Init(root, pp.proj, pp.dProj)
			root = &pi.proj
			if pp.limit >= 0 && !pp.useTopN {
				pi.limit.Init(root, pp.limit, pp.dLimit)
				root = &pi.limit
			}
		}
	}
	pi.root, pi.leaf = root, leaf
	pi.nodes = pi.nodeBuf[:0]
	// The tree is a single-child chain except for a ParallelScan leaf,
	// whose children (the partitions) are themselves leaves — so the
	// depth-first walk is the chain walk plus one fan-out at the
	// bottom. Serial plans stay within nodeBuf (no allocation);
	// parallel plans may spill, which is noise against the scan they
	// front.
	depth := 0
	for op := root; op != nil; depth++ {
		pi.nodes = append(pi.nodes, opNode{op, depth})
		ch := op.Children()
		if len(ch) == 0 {
			break
		}
		if len(ch) > 1 {
			for _, c := range ch {
				pi.nodes = append(pi.nodes, opNode{c, depth + 1})
			}
			break
		}
		op = ch[0]
	}
	return pi
}

// armDeadline installs the statement-deadline check on the scan leaf.
// Only the leaf runs an unbounded loop (its Open-time traversal), so
// arming it bounds the whole tree; a nil check is a no-op, keeping the
// no-timeout path identical to the pre-deadline executor.
func (pi *planInstance) armDeadline(dc exec.DeadlineCheck) {
	if dc == nil {
		return
	}
	if da, ok := pi.leaf.(interface{ SetDeadlineCheck(exec.DeadlineCheck) }); ok {
		da.SetDeadlineCheck(dc)
	}
}

// drain runs the tree to completion via the Volcano protocol and
// returns the root's rows.
func (pi *planInstance) drain() ([]storage.Record, error) {
	if err := pi.root.Open(); err != nil {
		_ = pi.root.Close()
		return nil, err
	}
	var rows []storage.Record
	for {
		r, ok, err := pi.root.Next()
		if err != nil {
			_ = pi.root.Close()
			return nil, err
		}
		if !ok {
			break
		}
		rows = append(rows, r)
	}
	return rows, pi.root.Close()
}

// examined returns the scan leaf's rows-examined count — the legacy
// RowsExamined semantics (index paths count index entries).
func (pi *planInstance) examined() int { return pi.leaf.Stats().RowsExamined }

// stages snapshots every operator's runtime counters for the
// events_stages surface, root first. Thread/timestamp/digest are
// stamped by perfschema.AddStages. The returned slice is backed by the
// instance's stageBuf — AddStages copies the group into the history
// ring, so the ring never aliases (or retains) the planInstance.
func (pi *planInstance) stages() []perfschema.StageEvent {
	out := pi.stageBuf[:0]
	if len(pi.nodes) > len(pi.stageBuf) {
		// Parallel plans carry one stage per partition and can outgrow
		// the fixed buffer.
		out = make([]perfschema.StageEvent, 0, len(pi.nodes))
	}
	out = out[:len(pi.nodes)]
	for i, n := range pi.nodes {
		st := n.op.Stats()
		out[i] = perfschema.StageEvent{
			Seq:          i,
			Depth:        n.depth,
			Operator:     n.op.Describe(),
			RowsExamined: st.RowsExamined,
			RowsReturned: st.RowsReturned,
			PoolFetches:  st.PoolFetches,
		}
	}
	return out
}
