package engine

// Differential property test for the Volcano executor refactor: the
// same randomized workload is pushed through the frozen legacy
// executor (legacy_exec_test.go) and the production operator-tree
// executor, and every observable surface must match statement by
// statement — result rows, columns, affected/examined counts, access
// path, cache provenance, error text — plus the complete forensic
// artifact state at the end (general log, binlog, perfschema digests
// and histories, heap arena) and, most importantly for the paper's
// threat model, the exact buffer-pool page-fetch sequence.

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"snapdb/internal/storage"
)

// renderResult flattens a Result into a canonical string so nil and
// empty row slices compare equal (the two executors legitimately
// differ there) while every value difference is still caught.
func renderResult(res *Result, err error) string {
	if err != nil {
		return "ERR " + err.Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "cols=%v affected=%d examined=%d path=%q cache=%v rows=%d",
		res.Columns, res.RowsAffected, res.RowsExamined, res.AccessPath, res.FromCache, len(res.Rows))
	for _, r := range res.Rows {
		b.WriteByte('\n')
		for i, v := range r {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(v.SQL())
		}
	}
	return b.String()
}

// randomWorkload generates a deterministic statement mix covering
// every access path and error branch the planner distinguishes:
// point/range/secondary-index/full scans, projections, ORDER BY,
// LIMIT, COUNT/SUM aggregates, mutations, transactions, mid-workload
// DDL, and the full family of planning errors.
func randomWorkload(rng *rand.Rand) []string {
	w := []string{
		"CREATE TABLE items (id INT PRIMARY KEY, name TEXT, cat INT, score INT)",
		"CREATE TABLE logs (id INT PRIMARY KEY, msg TEXT)",
	}
	for i := 0; i < 60; i++ {
		w = append(w, fmt.Sprintf(
			"INSERT INTO items (id, name, cat, score) VALUES (%d, 'n%d', %d, %d)",
			i, i, rng.Intn(8), rng.Intn(100)))
	}
	kinds := []func() string{
		func() string { return fmt.Sprintf("SELECT * FROM items WHERE id = %d", rng.Intn(70)) },
		func() string {
			a := rng.Intn(55)
			return fmt.Sprintf("SELECT name, score FROM items WHERE id >= %d AND id <= %d", a, a+rng.Intn(12))
		},
		func() string { return fmt.Sprintf("SELECT name FROM items WHERE cat = %d", rng.Intn(9)) },
		func() string { return fmt.Sprintf("SELECT * FROM items WHERE score > %d", rng.Intn(100)) },
		func() string {
			a := rng.Intn(6)
			return fmt.Sprintf(
				"SELECT name FROM items WHERE cat >= %d AND cat <= %d ORDER BY score DESC LIMIT %d",
				a, a+2, 1+rng.Intn(5))
		},
		func() string {
			return fmt.Sprintf("SELECT id, name FROM items ORDER BY name LIMIT %d", 1+rng.Intn(8))
		},
		func() string {
			// LIMIT 0 is a real, empty limit — not "no limit".
			return "SELECT name FROM items ORDER BY score LIMIT 0"
		},
		func() string { return "SELECT * FROM items LIMIT 0" },
		func() string {
			// Duplicate sort keys: Top-N must keep the stable order.
			return fmt.Sprintf("SELECT id, name FROM items ORDER BY cat LIMIT %d", 1+rng.Intn(10))
		},
		func() string {
			// Index-order DESC: after idx_cat exists this runs the
			// group-reversing key lookup instead of a sort.
			a := rng.Intn(6)
			return fmt.Sprintf(
				"SELECT name FROM items WHERE cat >= %d AND cat <= %d ORDER BY cat DESC LIMIT %d",
				a, a+2, 1+rng.Intn(6))
		},
		func() string {
			a := rng.Intn(6)
			return fmt.Sprintf(
				"SELECT name FROM items WHERE cat >= %d AND cat <= %d ORDER BY cat",
				a, a+2)
		},
		func() string {
			// PK ordering absorbed by the scan leaf (exact reversal).
			return fmt.Sprintf("SELECT name FROM items ORDER BY id DESC LIMIT %d", 1+rng.Intn(8))
		},
		func() string { return "SELECT COUNT(*) FROM items LIMIT 0" },
		func() string { return "SELECT COUNT(*) FROM items ORDER BY cat" }, // parse error: aggregate ORDER BY
		func() string { return fmt.Sprintf("SELECT COUNT(*) FROM items WHERE cat = %d", rng.Intn(9)) },
		func() string {
			a := rng.Intn(55)
			return fmt.Sprintf("SELECT SUM(score) FROM items WHERE id >= %d AND id <= %d", a, a+10)
		},
		func() string { return "SELECT nosuch FROM items" },
		func() string { return "SELECT * FROM items WHERE nosuch = 1" },
		func() string { return "SELECT SUM(name) FROM items" },
		func() string { return "SELECT SUM(nosuch) FROM items WHERE id = 3" },
		func() string { return "SELECT name FROM items ORDER BY nosuch" },
		func() string { return "SELECT * FROM missing_table" },
		func() string { return "SELECT COUNT(nosuch) FROM items" }, // COUNT ignores its argument
		func() string {
			return fmt.Sprintf("UPDATE items SET score = %d WHERE id = %d", rng.Intn(100), rng.Intn(70))
		},
		func() string {
			return fmt.Sprintf("UPDATE items SET name = 'u%d' WHERE cat = %d", rng.Intn(100), rng.Intn(9))
		},
		func() string { return "UPDATE items SET nosuch = 1 WHERE id = 1" },
		func() string { return "UPDATE items SET id = 999 WHERE id = 1" },
		func() string { return "UPDATE items SET score = 'oops' WHERE id = 1" },
		func() string { return fmt.Sprintf("DELETE FROM items WHERE id = %d", 40+rng.Intn(40)) },
		func() string { return "DELETE FROM items WHERE nosuch = 1" },
		func() string {
			return fmt.Sprintf("INSERT INTO logs (id, msg) VALUES (%d, 'm%d')", 1000+rng.Intn(100000), rng.Intn(10))
		},
		func() string { return "SELECT broken FROM" }, // parse error
	}
	for i := 0; i < 220; i++ {
		switch i {
		case 70:
			w = append(w, "CREATE INDEX idx_cat ON items (cat)")
		case 120:
			w = append(w,
				"BEGIN",
				"INSERT INTO items (id, name, cat, score) VALUES (900, 'txn', 1, 1)",
				"UPDATE items SET score = 0 WHERE id = 900",
				"ROLLBACK")
		case 160:
			w = append(w,
				"BEGIN",
				"INSERT INTO items (id, name, cat, score) VALUES (901, 'txn2', 2, 2)",
				"COMMIT")
		}
		w = append(w, kinds[rng.Intn(len(kinds))]())
	}
	return w
}

func TestDifferentialLegacyVsOperator(t *testing.T) {
	for _, disable := range []bool{false, true} {
		name := "plancache-on"
		if disable {
			name = "plancache-off"
		}
		t.Run(name, func(t *testing.T) { runDifferential(t, disable) })
	}
}

func runDifferential(t *testing.T, disableCache bool) {
	workload := randomWorkload(rand.New(rand.NewSource(0xC0FFEE)))

	type runState struct {
		outcomes []string
		trace    []storage.PageID
		fs       forensicState
		lru      []storage.PageID
		hot      string
		hits     uint64
		misses   uint64
	}
	run := func(fn execFn) runState {
		cfg := Defaults()
		cfg.DisablePlanCache = disableCache
		cfg.EnableGeneralLog = true
		e, now := newEngine(t, cfg)
		var rs runState
		e.BufferPool().SetTraceFunc(func(id storage.PageID) { rs.trace = append(rs.trace, id) })
		s := e.Connect("diff")
		defer s.Close()
		for _, q := range workload {
			*now++
			res, err := s.executeWith(q, fn)
			rs.outcomes = append(rs.outcomes, renderResult(res, err))
		}
		rs.fs = captureForensics(e)
		rs.lru = e.BufferPool().LRUOrder()
		rs.hot = fmt.Sprint(e.BufferPool().HotPages())
		rs.hits, rs.misses, _ = e.BufferPool().Stats()
		return rs
	}

	legacy := run(legacyExecute)
	oper := run((*Engine).execute)

	if len(legacy.outcomes) != len(oper.outcomes) {
		t.Fatalf("outcome count mismatch: %d vs %d", len(legacy.outcomes), len(oper.outcomes))
	}
	for i := range legacy.outcomes {
		if legacy.outcomes[i] != oper.outcomes[i] {
			t.Errorf("statement %d %q:\nlegacy:   %s\noperator: %s",
				i, workload[i], legacy.outcomes[i], oper.outcomes[i])
		}
	}
	if !reflect.DeepEqual(legacy.trace, oper.trace) {
		n := len(legacy.trace)
		if len(oper.trace) < n {
			n = len(oper.trace)
		}
		at := n
		for i := 0; i < n; i++ {
			if legacy.trace[i] != oper.trace[i] {
				at = i
				break
			}
		}
		t.Errorf("buffer-pool fetch sequence diverges at fetch %d (legacy %d fetches, operator %d)",
			at, len(legacy.trace), len(oper.trace))
	}
	if legacy.hits != oper.hits || legacy.misses != oper.misses {
		t.Errorf("buffer-pool stats differ: legacy hits=%d misses=%d, operator hits=%d misses=%d",
			legacy.hits, legacy.misses, oper.hits, oper.misses)
	}
	if !reflect.DeepEqual(legacy.lru, oper.lru) {
		t.Errorf("buffer-pool LRU order differs")
	}
	if legacy.hot != oper.hot {
		t.Errorf("buffer-pool hot-page profile differs:\nlegacy:   %s\noperator: %s", legacy.hot, oper.hot)
	}
	// The legacy executor predates stage events, so stages are excluded
	// here; every other artifact surface must be byte-identical.
	for _, cmp := range []struct {
		name string
		a, b []string
	}{
		{"general log", legacy.fs.general, oper.fs.general},
		{"binlog", legacy.fs.binlog, oper.fs.binlog},
		{"digest summary", legacy.fs.digests, oper.fs.digests},
		{"statement history", legacy.fs.history, oper.fs.history},
		{"statements current", legacy.fs.current, oper.fs.current},
	} {
		if !reflect.DeepEqual(cmp.a, cmp.b) {
			t.Errorf("%s differs between legacy and operator executors (%d vs %d entries)",
				cmp.name, len(cmp.a), len(cmp.b))
		}
	}
	if len(legacy.fs.stages) != 0 {
		t.Errorf("legacy executor unexpectedly recorded %d stage events", len(legacy.fs.stages))
	}
	if len(oper.fs.stages) == 0 {
		t.Errorf("operator executor recorded no stage events")
	}
	if !bytes.Equal(legacy.fs.arena, oper.fs.arena) {
		t.Errorf("heap arena images differ")
	}
	if legacy.fs.statements != oper.fs.statements {
		t.Errorf("statement counters differ: %d vs %d", legacy.fs.statements, oper.fs.statements)
	}
}
