package engine

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"snapdb/internal/binlog"
	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
	"snapdb/internal/vfs"
	"snapdb/internal/wal"
)

// On-disk file names in a durable engine's data directory. The log and
// dump names match the snapshot package's MySQL-style names so the
// forensic tooling reads a live data directory and a disk snapshot the
// same way.
const (
	FileCheckpoint = "checkpoint.snapdb"
	FileRedo       = "ib_logfile_redo"
	FileUndo       = "ib_logfile_undo"
	FileBinlog     = "binlog.000001"
	FileBufferPool = "ib_buffer_pool"
)

// persistor is the engine's durability sink. The WAL and binlog group
// commit leaders call into it with each flushed batch; it appends the
// batch to the corresponding file inside CRC32-C frames and fsyncs
// before the batch is acknowledged, so a statement only returns success
// once its log records are on stable storage.
//
// Append offsets only advance after a successful write+sync: a failed
// or torn batch is overwritten by the next one, and a crash leaves at
// worst a torn tail that recovery truncates.
type persistor struct {
	mu   sync.Mutex
	fs   vfs.FS
	redo vfs.File
	undo vfs.File
	blog vfs.File

	redoOff int64
	undoOff int64
	blogOff int64
}

// openOrCreate opens name, creating it if missing.
func openOrCreate(fs vfs.FS, name string) (vfs.File, error) {
	f, err := fs.Open(name)
	if errors.Is(err, os.ErrNotExist) {
		return fs.Create(name)
	}
	return f, err
}

// newPersistor opens (or creates) the three append-only log files and
// truncates each to the given valid-prefix offset — 0 for a fresh
// engine, the parse-verified prefix after recovery (cutting off any
// torn tail a crash left).
func newPersistor(fs vfs.FS, redoOff, undoOff, blogOff int64) (*persistor, error) {
	p := &persistor{fs: fs, redoOff: redoOff, undoOff: undoOff, blogOff: blogOff}
	for _, it := range []struct {
		name string
		off  int64
		dst  *vfs.File
	}{
		{FileRedo, redoOff, &p.redo},
		{FileUndo, undoOff, &p.undo},
		{FileBinlog, blogOff, &p.blog},
	} {
		f, err := openOrCreate(fs, it.name)
		if err != nil {
			return nil, fmt.Errorf("engine: open %s: %w", it.name, err)
		}
		if err := f.Truncate(it.off); err != nil {
			return nil, fmt.Errorf("engine: truncate %s: %w", it.name, err)
		}
		if err := f.Sync(); err != nil {
			return nil, fmt.Errorf("engine: sync %s: %w", it.name, err)
		}
		*it.dst = f
	}
	if err := fs.SyncDir(); err != nil {
		return nil, fmt.Errorf("engine: syncdir: %w", err)
	}
	return p, nil
}

// batchBufPool holds the scratch buffers the persistor encodes each
// group-commit batch into. Batches are written and synced before the
// sink returns, so the buffers never outlive one append and can be
// recycled — without this, every fsync'd batch allocated fresh encode
// buffers on the hot path.
var batchBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4096); return &b },
}

func getBatchBuf() *[]byte  { return batchBufPool.Get().(*[]byte) }
func putBatchBuf(b *[]byte) { *b = (*b)[:0]; batchBufPool.Put(b) }

// appendWAL is the wal.Manager sink: persist one group-commit batch to
// the redo and undo files.
func (p *persistor) appendWAL(redo, undo []wal.Record) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	redoBufP, undoBufP, scratchP := getBatchBuf(), getBatchBuf(), getBatchBuf()
	defer putBatchBuf(redoBufP)
	defer putBatchBuf(undoBufP)
	defer putBatchBuf(scratchP)
	redoBuf, undoBuf, scratch := *redoBufP, *undoBufP, *scratchP
	for _, r := range redo {
		scratch = r.AppendEncode(scratch[:0])
		redoBuf = storage.AppendFrame(redoBuf, scratch)
	}
	for _, r := range undo {
		scratch = r.AppendEncode(scratch[:0])
		undoBuf = storage.AppendFrame(undoBuf, scratch)
	}
	*redoBufP, *undoBufP, *scratchP = redoBuf, undoBuf, scratch
	if _, err := p.redo.WriteAt(redoBuf, p.redoOff); err != nil {
		return fmt.Errorf("engine: redo append: %w", err)
	}
	if len(undoBuf) > 0 {
		if _, err := p.undo.WriteAt(undoBuf, p.undoOff); err != nil {
			return fmt.Errorf("engine: undo append: %w", err)
		}
	}
	if err := p.redo.Sync(); err != nil {
		return fmt.Errorf("engine: redo sync: %w", err)
	}
	if len(undoBuf) > 0 {
		if err := p.undo.Sync(); err != nil {
			return fmt.Errorf("engine: undo sync: %w", err)
		}
	}
	p.redoOff += int64(len(redoBuf))
	p.undoOff += int64(len(undoBuf))
	return nil
}

// appendBinlog is the binlog.Log sink: persist one group-commit batch
// of events.
func (p *persistor) appendBinlog(evs []binlog.Event) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	bufP, scratchP := getBatchBuf(), getBatchBuf()
	defer putBatchBuf(bufP)
	defer putBatchBuf(scratchP)
	buf, scratch := *bufP, *scratchP
	for _, ev := range evs {
		scratch = ev.AppendEncode(scratch[:0])
		buf = storage.AppendFrame(buf, scratch)
	}
	*bufP, *scratchP = buf, scratch
	if _, err := p.blog.WriteAt(buf, p.blogOff); err != nil {
		return fmt.Errorf("engine: binlog append: %w", err)
	}
	if err := p.blog.Sync(); err != nil {
		return fmt.Errorf("engine: binlog sync: %w", err)
	}
	p.blogOff += int64(len(buf))
	return nil
}

// writeDump persists the periodic buffer-pool dump crash-atomically.
func (p *persistor) writeDump(dump []byte) error {
	return vfs.WriteFileAtomic(p.fs, FileBufferPool, dump)
}

// ckptIndex, ckptTable and ckptMeta are the checkpoint's catalog
// section: everything needed to reopen the B+ trees inside the
// checkpointed tablespace image.
type ckptIndex struct {
	Name   string
	Column string
	ColIdx int
	Root   storage.PageID
}

// ckptStats carries a table's planner statistics across restarts: an
// analyzed table stays analyzed after recovery, so the cost model does
// not silently fall back to default selectivities until someone re-runs
// ANALYZE. Nil when the table was never analyzed.
type ckptStats struct {
	AnalyzedAt int64
	Baseline   int64
	Cols       map[int]colStats
}

type ckptTable struct {
	ID      uint8
	Name    string
	Columns []sqlparse.ColumnDef
	PK      int
	Root    storage.PageID
	Indexes []ckptIndex
	Stats   *ckptStats `json:",omitempty"`
}

type ckptMeta struct {
	LSN         uint64
	Txn         uint64
	NextTableID uint8
	Tables      []ckptTable

	// Versions carries the MVCC version store through the checkpoint —
	// deliberately, and measurably (E16): the checkpoint truncates the
	// WAL files, closing the redo/undo forensic window, but the old row
	// versions it serializes here keep every not-yet-purged pre-image
	// (including deleted rows) recoverable from the checkpoint file.
	Versions *ckptVersions `json:",omitempty"`
}

// writeCheckpoint persists a quiesced engine image — catalog metadata
// and the full tablespace — as one crash-atomic file, then truncates
// the redo and undo files whose records the image supersedes. A crash
// between the two steps is safe: recovery skips WAL records at or
// below the checkpoint LSN.
func (p *persistor) writeCheckpoint(meta ckptMeta, tsImage []byte) error {
	metaBuf, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("engine: checkpoint meta: %w", err)
	}
	// Pad the meta frame (trailing spaces — valid JSON whitespace) so
	// the tablespace pages inside tsImage land on storage.PageSize file
	// offsets: two frame headers plus the tablespace's u64 page count
	// precede them. Aligned checkpoints make page-granular analysis
	// stable — both ours (E17 diffs ciphertext checkpoint pages across
	// snapshots and must attribute a change to the page, not to a meta
	// length drift shifting every byte after it) and a real attacker's.
	if over := (2*storage.FrameHeaderSize + len(metaBuf) + 8) % storage.PageSize; over != 0 {
		metaBuf = append(metaBuf, bytes.Repeat([]byte{' '}, storage.PageSize-over)...)
	}
	buf := storage.AppendFrame(nil, metaBuf)
	buf = storage.AppendFrame(buf, tsImage)
	if err := vfs.WriteFileAtomic(p.fs, FileCheckpoint, buf); err != nil {
		return fmt.Errorf("engine: checkpoint write: %w", err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, it := range []struct {
		name string
		f    vfs.File
		off  *int64
	}{
		{FileRedo, p.redo, &p.redoOff},
		{FileUndo, p.undo, &p.undoOff},
	} {
		if err := it.f.Truncate(0); err != nil {
			return fmt.Errorf("engine: truncate %s: %w", it.name, err)
		}
		if err := it.f.Sync(); err != nil {
			return fmt.Errorf("engine: sync %s: %w", it.name, err)
		}
		*it.off = 0
	}
	return nil
}

// readCheckpoint loads and validates the checkpoint file. Missing file:
// (zero meta, nil image, false, nil). Corrupt file: error — never a
// panic, and never a silently half-loaded catalog.
func readCheckpoint(fs vfs.FS) (ckptMeta, []byte, bool, error) {
	var meta ckptMeta
	img, err := fs.ReadFile(FileCheckpoint)
	if errors.Is(err, os.ErrNotExist) {
		return meta, nil, false, nil
	}
	if err != nil {
		return meta, nil, false, fmt.Errorf("engine: read checkpoint: %w", err)
	}
	metaBuf, n, err := storage.ReadFrame(img)
	if err != nil {
		return meta, nil, false, fmt.Errorf("engine: checkpoint meta frame: %w", err)
	}
	tsImage, n2, err := storage.ReadFrame(img[n:])
	if err != nil {
		return meta, nil, false, fmt.Errorf("engine: checkpoint tablespace frame: %w", err)
	}
	if n+n2 != len(img) {
		return meta, nil, false, fmt.Errorf("engine: checkpoint has %d trailing bytes", len(img)-n-n2)
	}
	if err := json.Unmarshal(metaBuf, &meta); err != nil {
		return meta, nil, false, fmt.Errorf("engine: checkpoint meta: %w", err)
	}
	return meta, tsImage, true, nil
}

// checkpointLocked writes a checkpoint of the current engine state.
// Callers must hold all table locks (the engine must be quiesced) and
// have verified no transactions are open.
func (e *Engine) checkpointLocked() error {
	if e.persist == nil {
		return nil
	}
	e.mu.Lock()
	meta := ckptMeta{
		LSN:         e.wal.CurrentLSN(),
		Txn:         e.wal.TxnSeq(),
		NextTableID: e.nextTableID,
	}
	for _, t := range e.tables {
		ct := ckptTable{
			ID:      t.ID,
			Name:    t.Name,
			Columns: t.Columns,
			PK:      t.PKIndex,
			Root:    t.Tree.Root(),
		}
		for _, ix := range t.Indexes {
			ct.Indexes = append(ct.Indexes, ckptIndex{
				Name: ix.Name, Column: ix.Column, ColIdx: ix.colIdx, Root: ix.Tree.Root(),
			})
		}
		if analyzed, at, baseline, cols := t.statsSnapshot(); analyzed {
			ct.Stats = &ckptStats{AnalyzedAt: at, Baseline: baseline, Cols: cols}
		}
		meta.Tables = append(meta.Tables, ct)
	}
	// e.tables is a map: sort so two checkpoints of the same state are
	// byte-identical. E17's page-diff analysis (and any external
	// snapshot differ) depends on checkpoint bytes being a function of
	// engine state, not of map iteration order.
	sort.Slice(meta.Tables, func(i, j int) bool { return meta.Tables[i].ID < meta.Tables[j].ID })
	if e.versions != nil {
		meta.Versions = e.versions.ckptSnapshot()
	}
	tsImage := e.ts.Serialize()
	e.mu.Unlock()
	if err := e.persist.writeCheckpoint(meta, tsImage); err != nil {
		return err
	}
	// The in-memory circular logs mirror the (now empty) disk logs.
	e.wal.Redo.Reset()
	e.wal.Undo.Reset()
	return nil
}

// Checkpoint quiesces the engine and persists a crash-atomic image of
// the catalog and tablespace, truncating the WAL files it supersedes.
// It refuses while any explicit transaction is open, because their
// undo information lives in those WAL files. No-op for a non-durable
// engine.
func (e *Engine) Checkpoint() error {
	if e.persist == nil {
		return nil
	}
	e.locks.lockAll()
	defer e.locks.unlockAll()
	if n := e.openTxns.Load(); n != 0 {
		return fmt.Errorf("engine: checkpoint refused: %d open transaction(s)", n)
	}
	return e.checkpointLocked()
}
