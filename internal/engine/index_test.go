package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"snapdb/internal/sqlparse"
)

func setupIndexed(t *testing.T, n int) (*Engine, *Session) {
	t.Helper()
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE orders (id INT PRIMARY KEY, customer TEXT, total INT)")
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < n; i++ {
		q := fmt.Sprintf("INSERT INTO orders (id, customer, total) VALUES (%d, 'cust%02d', %d)",
			i, rng.Intn(20), rng.Intn(1000))
		mustExec(t, s, q)
	}
	mustExec(t, s, "CREATE INDEX idx_total ON orders (total)")
	mustExec(t, s, "CREATE INDEX idx_customer ON orders (customer)")
	return e, s
}

// fullScanRows runs the query forcing a scan (on a fresh engine without
// indexes) to obtain reference results.
func referenceRows(t *testing.T, src *Session, query string) [][2]int64 {
	t.Helper()
	res := mustExec(t, src, query)
	var out [][2]int64
	for _, r := range res.Rows {
		out = append(out, [2]int64{r[0].Int, r[1].Int})
	}
	return out
}

func TestIndexScanMatchesFullScan(t *testing.T) {
	_, s := setupIndexed(t, 500)
	// Reference engine without indexes.
	eRef, _ := newEngine(t, Defaults())
	ref := eRef.Connect("ref")
	mustExec(t, ref, "CREATE TABLE orders (id INT PRIMARY KEY, customer TEXT, total INT)")
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		q := fmt.Sprintf("INSERT INTO orders (id, customer, total) VALUES (%d, 'cust%02d', %d)",
			i, rng.Intn(20), rng.Intn(1000))
		mustExec(t, ref, q)
	}
	queries := []string{
		"SELECT id, total FROM orders WHERE total >= 100 AND total <= 200",
		"SELECT id, total FROM orders WHERE total = 500",
		"SELECT id, total FROM orders WHERE total BETWEEN 900 AND 999",
		"SELECT id, total FROM orders WHERE total >= 0 AND total <= 999",
	}
	for _, q := range queries {
		want := referenceRows(t, ref, q)
		got := referenceRows(t, s, q)
		if len(got) != len(want) {
			t.Fatalf("%s: %d rows via index, %d via scan", q, len(got), len(want))
		}
		seen := make(map[[2]int64]bool, len(want))
		for _, r := range want {
			seen[r] = true
		}
		for _, r := range got {
			if !seen[r] {
				t.Fatalf("%s: row %v from index scan not in full scan", q, r)
			}
		}
	}
}

func TestIndexReducesRowsExamined(t *testing.T) {
	_, s := setupIndexed(t, 500)
	res := mustExec(t, s, "SELECT id FROM orders WHERE total = 123")
	if res.RowsExamined >= 500 {
		t.Errorf("examined %d rows; the index should prune the scan", res.RowsExamined)
	}
	res = mustExec(t, s, "SELECT id FROM orders WHERE customer = 'cust05'")
	if res.RowsExamined >= 500 {
		t.Errorf("text index: examined %d rows", res.RowsExamined)
	}
}

func TestIndexMaintainedByUpdateDelete(t *testing.T) {
	_, s := setupIndexed(t, 100)
	mustExec(t, s, "UPDATE orders SET total = 7777 WHERE id = 42")
	res := mustExec(t, s, "SELECT id FROM orders WHERE total = 7777")
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 42 {
		t.Fatalf("updated row not found via index: %v", res.Rows)
	}
	mustExec(t, s, "DELETE FROM orders WHERE id = 42")
	res = mustExec(t, s, "SELECT id FROM orders WHERE total = 7777")
	if len(res.Rows) != 0 {
		t.Fatalf("deleted row still indexed: %v", res.Rows)
	}
}

func TestIndexMaintainedByRollback(t *testing.T) {
	_, s := setupIndexed(t, 50)
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "UPDATE orders SET total = 8888 WHERE id = 10")
	mustExec(t, s, "INSERT INTO orders (id, customer, total) VALUES (999, 'ghost', 8888)")
	mustExec(t, s, "DELETE FROM orders WHERE id = 11")
	mustExec(t, s, "ROLLBACK")

	res := mustExec(t, s, "SELECT id FROM orders WHERE total = 8888")
	if len(res.Rows) != 0 {
		t.Errorf("rolled-back values still indexed: %v", res.Rows)
	}
	// Row 11 must be findable through its index entry again.
	row11 := mustExec(t, s, "SELECT total FROM orders WHERE id = 11")
	if len(row11.Rows) != 1 {
		t.Fatal("rolled-back delete lost the row")
	}
	viaIdx := mustExec(t, s, fmt.Sprintf("SELECT id FROM orders WHERE total = %d", row11.Rows[0][0].Int))
	found := false
	for _, r := range viaIdx.Rows {
		if r[0].Int == 11 {
			found = true
		}
	}
	if !found {
		t.Error("restored row missing from index")
	}
}

func TestCreateIndexValidation(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	mustExec(t, s, "CREATE INDEX idx_v ON t (v)")
	cases := []string{
		"CREATE INDEX idx_v ON t (v)",       // duplicate name
		"CREATE INDEX idx_v2 ON t (v)",      // column already indexed
		"CREATE INDEX idx_id ON t (id)",     // PK already indexed
		"CREATE INDEX idx_x ON t (nope)",    // unknown column
		"CREATE INDEX idx_y ON missing (v)", // unknown table
	}
	for _, q := range cases {
		if _, err := s.Execute(q); err == nil {
			t.Errorf("Execute(%q) accepted", q)
		}
	}
	mustExec(t, s, "BEGIN")
	if _, err := s.Execute("CREATE INDEX idx_txn ON t (v)"); err == nil {
		t.Error("DDL inside transaction accepted")
	}
	mustExec(t, s, "ROLLBACK")
}

func TestCreateIndexBackfillsExistingRows(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	for i := 0; i < 200; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, %d)", i, i%10))
	}
	mustExec(t, s, "CREATE INDEX idx_v ON t (v)")
	res := mustExec(t, s, "SELECT COUNT(*) FROM t WHERE v = 3")
	if res.Rows[0][0].Int != 20 {
		t.Errorf("count via backfilled index = %d, want 20", res.Rows[0][0].Int)
	}
	if res.RowsExamined >= 200 {
		t.Errorf("examined = %d; backfilled index unused", res.RowsExamined)
	}
}

func TestIndexDDLInBinlog(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	mustExec(t, s, "CREATE INDEX idx_v ON t (v)")
	found := false
	for _, ev := range e.Binlog().Events() {
		if strings.Contains(ev.Statement, "CREATE INDEX idx_v") {
			found = true
		}
	}
	if !found {
		t.Error("index DDL missing from binlog")
	}
}

func TestIndexNegativeValuesOrdered(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	for i, v := range []int64{-100, -1, 0, 1, 100} {
		mustExec(t, s, fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, %d)", i, v))
	}
	mustExec(t, s, "CREATE INDEX idx_v ON t (v)")
	res := mustExec(t, s, "SELECT v FROM t WHERE v >= -50 AND v <= 50")
	if len(res.Rows) != 3 {
		t.Fatalf("range over negatives = %v", res.Rows)
	}
}

func TestAccessPathReporting(t *testing.T) {
	_, s := setupIndexed(t, 100)
	cases := []struct {
		query string
		want  string
	}{
		{"SELECT id FROM orders WHERE id = 5", "pk-range"},
		{"SELECT id FROM orders WHERE id >= 5 AND id <= 9", "pk-range"},
		{"SELECT id FROM orders WHERE total = 100", "index:idx_total"},
		{"SELECT id FROM orders WHERE customer = 'cust01'", "index:idx_customer"},
		{"SELECT id FROM orders WHERE total >= 100", "full-scan"}, // one-sided: no index range
		{"SELECT id FROM orders", "full-scan"},
	}
	for _, c := range cases {
		res := mustExec(t, s, c.query)
		if res.AccessPath != c.want {
			t.Errorf("%s: path = %q, want %q", c.query, res.AccessPath, c.want)
		}
	}
}

func TestIndexedAccessShowsInBufferPool(t *testing.T) {
	e, s := setupIndexed(t, 500)
	h1, m1, _ := e.BufferPool().Stats()
	mustExec(t, s, "SELECT id FROM orders WHERE total = 321")
	h2, m2, _ := e.BufferPool().Stats()
	if h2+m2 == h1+m1 {
		t.Error("index scan produced no buffer pool traffic")
	}
}

// TestEncodeOrderedMatchesSprintf pins the hand-rolled int encoding in
// encodeOrdered to the fmt.Sprintf("i%016x", ...) form it replaced:
// byte-identical output, and bytewise order equal to value order.
func TestEncodeOrderedMatchesSprintf(t *testing.T) {
	vals := []int64{
		math.MinInt64, math.MinInt64 + 1, -1 << 62, -65536, -256, -2, -1,
		0, 1, 2, 255, 65535, 1 << 62, math.MaxInt64 - 1, math.MaxInt64,
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 1000; i++ {
		vals = append(vals, int64(rng.Uint64()))
	}
	for _, v := range vals {
		got := encodeOrdered(sqlparse.IntValue(v))
		want := fmt.Sprintf("i%016x", uint64(v)+(1<<63))
		if got != want {
			t.Fatalf("encodeOrdered(%d) = %q, want %q", v, got, want)
		}
	}
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := 1; i < len(sorted); i++ {
		a := encodeOrdered(sqlparse.IntValue(sorted[i-1]))
		b := encodeOrdered(sqlparse.IntValue(sorted[i]))
		if a > b {
			t.Fatalf("order violated: enc(%d)=%q > enc(%d)=%q",
				sorted[i-1], a, sorted[i], b)
		}
	}
	if got := encodeOrdered(sqlparse.StrValue("abc")); got != "sabc" {
		t.Fatalf("string encoding = %q, want %q", got, "sabc")
	}
}
