package engine

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
)

// LIMIT semantics at the statement surface: LIMIT 0 is a real, empty
// limit (MySQL semantics), LIMIT 1 truncates, and a limit larger than
// the result set is a no-op — with and without ORDER BY, and on the
// single aggregate row.
func TestLimitBounds(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	defer s.Close()
	setupCustomers(t, s, 10)

	cases := []struct {
		query string
		want  int
	}{
		{"SELECT id FROM customers LIMIT 0", 0},
		{"SELECT id FROM customers LIMIT 1", 1},
		{"SELECT id FROM customers LIMIT 99", 10},
		{"SELECT id FROM customers ORDER BY age LIMIT 0", 0},
		{"SELECT id FROM customers ORDER BY age LIMIT 1", 1},
		{"SELECT id FROM customers ORDER BY age LIMIT 99", 10},
		{"SELECT id FROM customers ORDER BY id DESC LIMIT 0", 0},
		{"SELECT COUNT(*) FROM customers LIMIT 0", 0},
		{"SELECT COUNT(*) FROM customers LIMIT 1", 1},
		{"SELECT SUM(age) FROM customers LIMIT 5", 1},
		{"SELECT id FROM customers WHERE id >= 2 AND id <= 5 ORDER BY id LIMIT 0", 0},
	}
	for _, tc := range cases {
		res := mustExec(t, s, tc.query)
		if len(res.Rows) != tc.want {
			t.Errorf("%s: %d rows, want %d", tc.query, len(res.Rows), tc.want)
		}
		// LIMIT never changes what the executor examines, only what it
		// returns: the zero-limit variants still scan.
		if strings.Contains(tc.query, "LIMIT 0") && !strings.Contains(tc.query, "WHERE") && res.RowsExamined != 10 {
			t.Errorf("%s: examined %d rows, want 10", tc.query, res.RowsExamined)
		}
	}
}

// ORDER BY over a rejected aggregate surfaces the typed parser error
// through the statement surface.
func TestAggregateOrderByRejected(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	defer s.Close()
	setupCustomers(t, s, 5)
	_, err := s.Execute("SELECT COUNT(*) FROM customers ORDER BY age")
	if err == nil {
		t.Fatal("ORDER BY over aggregate accepted")
	}
	if !errors.Is(err, sqlparse.ErrAggregateOrderBy) {
		t.Errorf("error %v is not ErrAggregateOrderBy", err)
	}
}

// DESC over the secondary-index access path must produce exactly what a
// stable descending sort would: equal-key groups in reverse key order,
// ascending primary key within each group — with no sort operator in
// the plan.
func TestOrderByIndexDescStable(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	defer s.Close()
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, grp INT, tag TEXT)")
	// Insert in shuffled pk order so index order != insertion order.
	for _, row := range [][2]int64{{5, 2}, {1, 3}, {4, 2}, {2, 3}, {3, 1}, {6, 1}, {0, 2}} {
		mustExec(t, s, fmt.Sprintf("INSERT INTO t (id, grp, tag) VALUES (%d, %d, 'x')", row[0], row[1]))
	}
	mustExec(t, s, "CREATE INDEX idx_grp ON t (grp)")

	res := mustExec(t, s, "SELECT id FROM t WHERE grp >= 1 AND grp <= 3 ORDER BY grp DESC")
	if res.AccessPath != "index:idx_grp" {
		t.Fatalf("access path = %q, want index:idx_grp", res.AccessPath)
	}
	// grp=3: ids 1,2; grp=2: ids 0,4,5; grp=1: ids 3,6.
	want := []int64{1, 2, 0, 4, 5, 3, 6}
	if len(res.Rows) != len(want) {
		t.Fatalf("rows = %v, want %d ids", res.Rows, len(want))
	}
	for i, w := range want {
		if res.Rows[i][0].Int != w {
			t.Fatalf("row %d id = %d, want %d (full order %v)", i, res.Rows[i][0].Int, w, res.Rows)
		}
	}

	// The plan must carry no sort node: the lookup absorbed the order.
	lines, _ := explainLines(t, s, "EXPLAIN SELECT id FROM t WHERE grp >= 1 AND grp <= 3 ORDER BY grp DESC")
	joined := strings.Join(lines, "\n")
	if strings.Contains(joined, "Sort") {
		t.Errorf("plan still sorts:\n%s", joined)
	}
	if !strings.Contains(joined, "order=grp DESC") {
		t.Errorf("plan does not absorb the ordering:\n%s", joined)
	}
}

// The sort-optimization differential: the same workload through a
// default engine (Top-N folding and index-order absorption active) and
// one with DisableSortOptimizations (every ORDER BY runs the full Sort
// operator, every LIMIT its own Limit node) must produce identical
// results AND identical observable leakage — the buffer-pool fetch
// sequence, LRU order, hot-page profile, and every forensic artifact
// except the stage events (where the differing plan shapes are visible
// by design). This is the PR's core claim: the optimizations change the
// CPU/memory profile, never the page-access profile.
func TestSortOptimizationLeakageEquivalence(t *testing.T) {
	workload := randomWorkload(rand.New(rand.NewSource(0xBEEF)))

	type runState struct {
		outcomes []string
		trace    []storage.PageID
		fs       forensicState
		lru      []storage.PageID
		hot      string
	}
	run := func(disable bool) runState {
		cfg := Defaults()
		cfg.DisableSortOptimizations = disable
		cfg.EnableGeneralLog = true
		e, now := newEngine(t, cfg)
		var rs runState
		e.BufferPool().SetTraceFunc(func(id storage.PageID) { rs.trace = append(rs.trace, id) })
		s := e.Connect("diff")
		defer s.Close()
		for _, q := range workload {
			*now++
			res, err := s.Execute(q)
			rs.outcomes = append(rs.outcomes, renderResult(res, err))
		}
		rs.fs = captureForensics(e)
		rs.lru = e.BufferPool().LRUOrder()
		rs.hot = fmt.Sprint(e.BufferPool().HotPages())
		return rs
	}

	fast := run(false)
	slow := run(true)

	for i := range fast.outcomes {
		if fast.outcomes[i] != slow.outcomes[i] {
			t.Errorf("statement %d %q:\noptimized: %s\nsort-only: %s",
				i, workload[i], fast.outcomes[i], slow.outcomes[i])
		}
	}
	if !reflect.DeepEqual(fast.trace, slow.trace) {
		t.Errorf("buffer-pool fetch sequences differ: %d vs %d fetches — the sort optimizations changed the page-access profile",
			len(fast.trace), len(slow.trace))
	}
	if !reflect.DeepEqual(fast.lru, slow.lru) {
		t.Errorf("buffer-pool LRU order differs")
	}
	if fast.hot != slow.hot {
		t.Errorf("hot-page profile differs:\noptimized: %s\nsort-only: %s", fast.hot, slow.hot)
	}
	for _, cmp := range []struct {
		name string
		a, b []string
	}{
		{"general log", fast.fs.general, slow.fs.general},
		{"binlog", fast.fs.binlog, slow.fs.binlog},
		{"digest summary", fast.fs.digests, slow.fs.digests},
		{"statement history", fast.fs.history, slow.fs.history},
		{"statements current", fast.fs.current, slow.fs.current},
	} {
		if !reflect.DeepEqual(cmp.a, cmp.b) {
			t.Errorf("%s differs between optimized and sort-only runs (%d vs %d entries)",
				cmp.name, len(cmp.a), len(cmp.b))
		}
	}
	if !bytes.Equal(fast.fs.arena, slow.fs.arena) {
		t.Errorf("heap arena images differ")
	}
	// Sanity: the knob actually flipped the plan shape somewhere.
	sawTopN, sawSort := false, false
	for _, ev := range fast.fs.stages {
		if strings.Contains(ev, "Top-N sort:") {
			sawTopN = true
		}
	}
	for _, ev := range slow.fs.stages {
		if strings.Contains(ev, "Top-N sort:") {
			t.Fatalf("DisableSortOptimizations still planned a Top-N: %s", ev)
		}
		if strings.Contains(ev, "Sort:") {
			sawSort = true
		}
	}
	if !sawTopN || !sawSort {
		t.Errorf("workload did not exercise both shapes (topn=%v sort=%v)", sawTopN, sawSort)
	}
}

// EXPLAIN ANALYZE really executes: the rendered tree carries the
// runtime counters, pages are fetched, and the query cache is bypassed
// in both directions.
func TestExplainAnalyzeSelect(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	defer s.Close()
	setupCustomers(t, s, 20)

	lines, res := explainLines(t, s, "EXPLAIN ANALYZE SELECT name FROM customers WHERE age >= 30 ORDER BY age LIMIT 4")
	if len(lines) != 4 {
		t.Fatalf("rendered %d operators, want 4:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	wantOps := []string{"Project:", "Top-N sort:", "Filter:", "Table scan"}
	for i, l := range lines {
		if !strings.Contains(l, wantOps[i]) {
			t.Errorf("line %d = %q, want operator %q", i, l, wantOps[i])
		}
		if !strings.Contains(l, "examined=") || !strings.Contains(l, "returned=") || !strings.Contains(l, "fetches=") {
			t.Errorf("line %d lacks counters: %q", i, l)
		}
	}
	if !strings.Contains(lines[3], "examined=20") {
		t.Errorf("scan line counters wrong: %q", lines[3])
	}
	if !strings.Contains(lines[1], "returned=4") {
		t.Errorf("top-n line counters wrong: %q", lines[1])
	}
	if res.RowsExamined != 20 {
		t.Errorf("RowsExamined = %d, want 20", res.RowsExamined)
	}
	if res.AccessPath != "full-scan" {
		t.Errorf("AccessPath = %q", res.AccessPath)
	}

	// Unlike plain EXPLAIN, the statement really fetched pages.
	before := e.BufferPool().FetchCount()
	explainLines(t, s, "EXPLAIN ANALYZE SELECT name FROM customers WHERE state = 'CA'")
	if after := e.BufferPool().FetchCount(); after == before {
		t.Error("EXPLAIN ANALYZE fetched no pages")
	}

	// Cache bypass, direction 1: a cached bare result must not satisfy
	// EXPLAIN ANALYZE (it would have no counters).
	const q = "SELECT name FROM customers WHERE state = 'NY'"
	mustExec(t, s, q)
	if !mustExec(t, s, q).FromCache {
		t.Fatal("bare statement did not cache")
	}
	lines, res = explainLines(t, s, "EXPLAIN ANALYZE "+q)
	if res.FromCache {
		t.Error("EXPLAIN ANALYZE served from the query cache")
	}
	if len(lines) == 0 || !strings.Contains(lines[len(lines)-1], "examined=20") {
		t.Errorf("EXPLAIN ANALYZE after cache hit rendered no real counters: %v", lines)
	}
	// Direction 2: EXPLAIN ANALYZE must not populate the cache either.
	if mustExec(t, s, "EXPLAIN ANALYZE "+q).FromCache {
		t.Error("repeated EXPLAIN ANALYZE hit the query cache")
	}
}

// EXPLAIN ANALYZE on mutations applies them for real, renders the
// affected count in the header, and binlogs the inner statement (so a
// replica replaying the log applies the same change).
func TestExplainAnalyzeMutations(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	defer s.Close()
	setupCustomers(t, s, 10)

	lines, res := explainLines(t, s, "EXPLAIN ANALYZE UPDATE customers SET age = 99 WHERE id = 4")
	if len(lines) == 0 || !strings.Contains(lines[0], "-> Update: customers (affected=1)") {
		t.Errorf("UPDATE header = %v", lines)
	}
	if res.RowsAffected != 1 {
		t.Errorf("RowsAffected = %d", res.RowsAffected)
	}
	if got := mustExec(t, s, "SELECT age FROM customers WHERE id = 4"); got.Rows[0][0].Int != 99 {
		t.Errorf("EXPLAIN ANALYZE UPDATE did not apply: age = %d", got.Rows[0][0].Int)
	}

	lines, res = explainLines(t, s, "EXPLAIN ANALYZE DELETE FROM customers WHERE id >= 8")
	if len(lines) == 0 || !strings.Contains(lines[0], "-> Delete: customers (affected=2)") {
		t.Errorf("DELETE header = %v", lines)
	}
	if len(lines) < 2 || !strings.Contains(strings.Join(lines, "\n"), "examined=") {
		t.Errorf("DELETE rendered no operator counters: %v", lines)
	}
	if got := mustExec(t, s, "SELECT COUNT(*) FROM customers"); got.Rows[0][0].Int != 8 {
		t.Errorf("count after EXPLAIN ANALYZE DELETE = %d, want 8", got.Rows[0][0].Int)
	}

	// The binlog records the inner statements, replayable as-is.
	var sawUpdate, sawDelete, sawExplain bool
	for _, ev := range e.Binlog().Events() {
		if strings.HasPrefix(ev.Statement, "UPDATE customers SET age = 99") {
			sawUpdate = true
		}
		if strings.HasPrefix(ev.Statement, "DELETE FROM customers") {
			sawDelete = true
		}
		if strings.Contains(ev.Statement, "EXPLAIN") {
			sawExplain = true
		}
	}
	if !sawUpdate || !sawDelete {
		t.Errorf("binlog missing inner statements (update=%v delete=%v)", sawUpdate, sawDelete)
	}
	if sawExplain {
		t.Error("binlog recorded the EXPLAIN ANALYZE wrapper text")
	}
}

func TestExplainAnalyzeErrors(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	defer s.Close()
	setupCustomers(t, s, 5)

	for _, tc := range []struct{ query, wantErr string }{
		{"EXPLAIN ANALYZE SELECT * FROM information_schema.processlist", "cannot EXPLAIN ANALYZE system table"},
		{"EXPLAIN ANALYZE SELECT * FROM nope", "unknown table"},
		{"EXPLAIN ANALYZE SELECT nosuch FROM customers", `unknown column "nosuch"`},
		{"EXPLAIN ANALYZE INSERT INTO customers (id, name, state, age) VALUES (9, 'x', 'IN', 1)", "EXPLAIN ANALYZE supports SELECT, UPDATE, and DELETE"},
	} {
		_, err := s.Execute(tc.query)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", tc.query, err, tc.wantErr)
		}
	}
}
