package engine

// Differential property test for the MVCC read path: for workloads
// with no cross-session read/write overlap — where snapshot reads and
// locking reads must agree — an engine with MVCC on and one with
// DisableMVCC set must produce byte-identical observable surfaces:
// per-statement results and errors, the binlog (including commit-time
// LSNs under the WAL-first commit ordering), and the general log. The
// divergent cases (reads during another session's open transaction)
// are asserted directly in mvcc_test.go; this test proves the MVCC
// bookkeeping — version chains, read views, inline purge, the commit
// resequencing — never perturbs what a conflict-free client observes.

import (
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// mvccDiffWorkload routes each statement to one of two sessions
// ("0|SQL" / "1|SQL"). Transactions never overlap a foreign read: the
// sessions hand the tables off between transaction boundaries.
func mvccDiffWorkload(rng *rand.Rand) []string {
	w := []string{
		"0|CREATE TABLE items (id INT PRIMARY KEY, name TEXT, cat INT, score INT)",
		"0|CREATE TABLE logs (id INT PRIMARY KEY, msg TEXT)",
	}
	for i := 0; i < 50; i++ {
		w = append(w, fmt.Sprintf(
			"0|INSERT INTO items (id, name, cat, score) VALUES (%d, 'n%d', %d, %d)",
			i, i, rng.Intn(8), rng.Intn(100)))
	}
	w = append(w, "0|CREATE INDEX idx_cat ON items (cat)")
	reads := []func(s int) string{
		func(s int) string { return fmt.Sprintf("%d|SELECT * FROM items WHERE id = %d", s, rng.Intn(60)) },
		func(s int) string {
			a := rng.Intn(40)
			return fmt.Sprintf("%d|SELECT name, score FROM items WHERE id >= %d AND id <= %d", s, a, a+rng.Intn(12))
		},
		func(s int) string { return fmt.Sprintf("%d|SELECT name FROM items WHERE cat = %d", s, rng.Intn(9)) },
		func(s int) string {
			return fmt.Sprintf("%d|SELECT id FROM items ORDER BY score DESC LIMIT %d", s, 1+rng.Intn(6))
		},
		func(s int) string { return fmt.Sprintf("%d|SELECT COUNT(*) FROM items", s) },
		func(s int) string {
			return fmt.Sprintf("%d|SELECT SUM(score) FROM items WHERE cat = %d", s, rng.Intn(9))
		},
		func(s int) string { return fmt.Sprintf("%d|SELECT nosuch FROM items", s) },
	}
	writes := []func(s int) string{
		func(s int) string {
			return fmt.Sprintf("%d|UPDATE items SET score = %d WHERE id = %d", s, rng.Intn(100), rng.Intn(60))
		},
		func(s int) string {
			return fmt.Sprintf("%d|UPDATE items SET cat = %d WHERE id = %d", s, rng.Intn(8), rng.Intn(60))
		},
		func(s int) string { return fmt.Sprintf("%d|DELETE FROM items WHERE id = %d", s, 40+rng.Intn(20)) },
		func(s int) string {
			return fmt.Sprintf("%d|INSERT INTO logs (id, msg) VALUES (%d, 'm%d')", s, 1000+rng.Intn(100000), rng.Intn(10))
		},
	}
	for round := 0; round < 30; round++ {
		// Autocommit mix from both sessions (no transaction open).
		for i := 0; i < 4; i++ {
			s := rng.Intn(2)
			if rng.Intn(3) == 0 {
				w = append(w, writes[rng.Intn(len(writes))](s))
			} else {
				w = append(w, reads[rng.Intn(len(reads))](s))
			}
		}
		// One session runs an explicit transaction — including its own
		// in-transaction reads (visible in both modes: own writes) —
		// while the other stays silent until it resolves.
		owner := rng.Intn(2)
		w = append(w, fmt.Sprintf("%d|BEGIN", owner))
		for i := 0; i < 2+rng.Intn(3); i++ {
			if rng.Intn(2) == 0 {
				w = append(w, writes[rng.Intn(len(writes))](owner))
			} else {
				w = append(w, reads[rng.Intn(len(reads))](owner))
			}
		}
		if rng.Intn(3) == 0 {
			w = append(w, fmt.Sprintf("%d|ROLLBACK", owner))
		} else {
			w = append(w, fmt.Sprintf("%d|COMMIT", owner))
		}
	}
	return w
}

func TestDifferentialMVCCVsLocking(t *testing.T) {
	workload := mvccDiffWorkload(rand.New(rand.NewSource(0xBEEF)))

	type runState struct {
		outcomes []string
		binlog   []string
		general  []string
	}
	run := func(disable bool) runState {
		cfg := Defaults()
		cfg.DisableMVCC = disable
		cfg.EnableGeneralLog = true
		cfg.PurgeEvery = 16 // exercise inline purge on the MVCC arm
		e, now := newEngine(t, cfg)
		var rs runState
		sessions := []*Session{e.Connect("diff-a"), e.Connect("diff-b")}
		defer sessions[0].Close()
		defer sessions[1].Close()
		for _, entry := range workload {
			sid, q, _ := strings.Cut(entry, "|")
			n, _ := strconv.Atoi(sid)
			*now++
			res, err := sessions[n].Execute(q)
			rs.outcomes = append(rs.outcomes, renderResult(res, err))
		}
		for _, en := range e.GeneralLog().Entries() {
			rs.general = append(rs.general, fmt.Sprintf("%d|%d|%s", en.Timestamp, en.Session, en.Statement))
		}
		for _, ev := range e.Binlog().Events() {
			rs.binlog = append(rs.binlog, fmt.Sprintf("%d|%d|%s", ev.Timestamp, ev.LSN, ev.Statement))
		}
		return rs
	}

	mvcc := run(false)
	locking := run(true)

	for i := range mvcc.outcomes {
		if mvcc.outcomes[i] != locking.outcomes[i] {
			t.Errorf("statement %d %q:\nmvcc:    %s\nlocking: %s",
				i, workload[i], mvcc.outcomes[i], locking.outcomes[i])
		}
	}
	if !reflect.DeepEqual(mvcc.binlog, locking.binlog) {
		t.Errorf("binlog differs between MVCC and locking runs (%d vs %d events)",
			len(mvcc.binlog), len(locking.binlog))
	}
	if !reflect.DeepEqual(mvcc.general, locking.general) {
		t.Errorf("general log differs between MVCC and locking runs")
	}
}
