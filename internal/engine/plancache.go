package engine

import (
	"container/list"
	"sync"
	"sync/atomic"

	"snapdb/internal/sqlparse"
)

// planCache is the engine's statement plan cache: a sharded, LRU-bounded
// map from exact statement text to its parsed AST, canonical digest, and
// resolved catalog bindings. A hit bypasses the lexer and parser
// entirely — which is why the key is the raw statement bytes rather than
// the literal-collapsed digest: two statements with one digest but
// different literals need different ASTs. The digest text and hash ride
// in the entry so a hit also skips the three tokenize passes the digest
// pipeline would otherwise pay.
//
// Invalidation is epoch-based: every DDL statement (CREATE TABLE,
// CREATE INDEX) bumps the catalog epoch, and a lookup that finds an
// entry from an older epoch treats it as a miss and evicts it. Entries
// record the epoch observed *before* their statement was parsed, so a
// plan raced by a concurrent DDL self-invalidates on its next lookup.
//
// The cache is deliberately invisible to the forensic surface: hits and
// misses flow through the general log, slow log, binlog, perfschema
// histogram, processlist, and heap arena identically (the
// leakage-equivalence tests pin this down). Only parsing is skipped —
// never logging.
type planCache struct {
	shards   [planShards]planShard
	epoch    atomic.Uint64
	perShard int

	hits, misses atomic.Uint64
}

const planShards = 16

// DefaultPlanCacheEntries is the default total plan-cache capacity.
const DefaultPlanCacheEntries = 4096

type planShard struct {
	mu sync.Mutex
	m  map[string]*list.Element
	ll *list.List // front = most recently used
}

// plan is one cached statement pipeline entry.
type plan struct {
	key    string
	stmt   sqlparse.Statement
	digest string // canonical digest text (perfschema DIGEST_TEXT)
	dhash  string // digest hash (perfschema DIGEST)
	epoch  uint64
	bind   planBindings
}

// planBindings carries the catalog resolution work a plan can reuse
// across executions. Tables are never dropped or altered, so a resolved
// *Table pointer stays valid for the life of the process; it is still
// epoch-guarded like the rest of the entry.
type planBindings struct {
	table *Table
	// phys is the resolved physical operator-tree template for SELECT,
	// UPDATE, and DELETE statements (see physical.go). A plan-cache hit
	// reuses it directly — no planning work at all on the hot path; the
	// template is immutable and execution instantiates fresh operators
	// from it. nil when the table could not be resolved or the statement
	// kind has no scan.
	phys *physicalPlan
}

func newPlanCache(entries int) *planCache {
	if entries <= 0 {
		entries = DefaultPlanCacheEntries
	}
	per := entries / planShards
	if per < 1 {
		per = 1
	}
	c := &planCache{perShard: per}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*list.Element)
		c.shards[i].ll = list.New()
	}
	return c
}

// shardFor hashes the statement text (FNV-1a) to a shard.
func (c *planCache) shardFor(key string) *planShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &c.shards[h%planShards]
}

// Epoch returns the current catalog epoch.
func (c *planCache) Epoch() uint64 { return c.epoch.Load() }

// bumpEpoch invalidates every cached plan (lazily, on next lookup).
// Called by DDL.
func (c *planCache) bumpEpoch() { c.epoch.Add(1) }

// lookup returns the cached plan for the statement, or nil. A stale
// (pre-DDL) entry is evicted and reported as a miss.
func (c *planCache) lookup(query string) *plan {
	if c == nil {
		return nil
	}
	cur := c.epoch.Load()
	sh := c.shardFor(query)
	sh.mu.Lock()
	el, ok := sh.m[query]
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		return nil
	}
	pl := el.Value.(*plan)
	if pl.epoch != cur {
		sh.ll.Remove(el)
		delete(sh.m, query)
		sh.mu.Unlock()
		c.misses.Add(1)
		return nil
	}
	sh.ll.MoveToFront(el)
	sh.mu.Unlock()
	c.hits.Add(1)
	return pl
}

// insert stores a freshly parsed plan, evicting the shard's LRU tail
// beyond capacity. The plan's epoch must be the value observed before
// parsing began.
func (c *planCache) insert(pl *plan) {
	if c == nil {
		return
	}
	sh := c.shardFor(pl.key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.m[pl.key]; ok {
		el.Value = pl
		sh.ll.MoveToFront(el)
		return
	}
	sh.m[pl.key] = sh.ll.PushFront(pl)
	for sh.ll.Len() > c.perShard {
		tail := sh.ll.Back()
		sh.ll.Remove(tail)
		delete(sh.m, tail.Value.(*plan).key)
	}
}

// Len returns the total cached entry count (test/diagnostic use).
func (c *planCache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += c.shards[i].ll.Len()
		c.shards[i].mu.Unlock()
	}
	return n
}

// Stats returns hit/miss counters.
func (c *planCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// PlanCacheStats reports the plan cache's hit/miss counters and current
// size; zeros when the cache is disabled.
func (e *Engine) PlanCacheStats() (hits, misses uint64, entries int) {
	if e.plans == nil {
		return 0, 0, 0
	}
	h, m := e.plans.Stats()
	return h, m, e.plans.Len()
}

// CatalogEpoch returns the DDL epoch counter (0 when the plan cache is
// disabled).
func (e *Engine) CatalogEpoch() uint64 {
	if e.plans == nil {
		return 0
	}
	return e.plans.Epoch()
}

// planFor resolves the statement pipeline front half: a cache hit
// returns the stored plan; a miss parses, binds, and (on success)
// caches. The digest text is computed exactly once per cached statement
// text and reused by every later hit. parse errors are returned with a
// nil plan — failed statements are never cached, so the error surface
// is identical with the cache on or off.
func (e *Engine) planFor(query string) (*plan, error) {
	if pl := e.plans.lookup(query); pl != nil {
		return pl, nil
	}
	var epoch uint64
	if e.plans != nil {
		// Observe the epoch before parsing: a DDL that lands between
		// here and insert leaves the entry stale, and the next lookup
		// re-parses.
		epoch = e.plans.Epoch()
	}
	stmt, err := sqlparse.Parse(query)
	if err != nil {
		return nil, err
	}
	digest := sqlparse.Digest(query)
	pl := &plan{
		key:    query,
		stmt:   stmt,
		digest: digest,
		dhash:  sqlparse.HashDigestText(digest),
		epoch:  epoch,
		bind:   e.bindPlan(stmt),
	}
	e.plans.insert(pl)
	return pl, nil
}

// bindPlan resolves what the statement's execution will need from the
// catalog, where that resolution is reusable: the table, and for the
// scanning statement kinds the full physical plan template. Resolution
// failures (unknown table) leave the binding empty; execution
// re-resolves and produces the same error it always did. Unknown
// columns and the like are *captured* by the template as whereErr or
// deferredErr rather than failing the bind, so the error fires at the
// same point in execution it always did.
func (e *Engine) bindPlan(stmt sqlparse.Statement) planBindings {
	var b planBindings
	switch st := stmt.(type) {
	case *sqlparse.Select:
		if isSystemTable(st.Table) {
			return b
		}
		if t, ok := e.Table(st.Table); ok {
			b.table = t
			b.phys = e.buildSelectPlan(t, st)
		}
	case *sqlparse.Update:
		if t, ok := e.Table(st.Table); ok {
			b.table = t
			b.phys = e.buildUpdatePlan(t, st)
		}
	case *sqlparse.Delete:
		if t, ok := e.Table(st.Table); ok {
			b.table = t
			b.phys = e.buildDeletePlan(t, st)
		}
	case *sqlparse.Insert:
		if t, ok := e.Table(st.Table); ok {
			b.table = t
		}
	}
	return b
}

// planTable returns the plan's bound table when available, falling back
// to a catalog lookup.
func (e *Engine) planTable(pl *plan, name string) (*Table, error) {
	if pl != nil && pl.bind.table != nil {
		return pl.bind.table, nil
	}
	return e.lookupTable(name)
}
