package engine

import (
	"fmt"

	"snapdb/internal/engine/exec"
	"snapdb/internal/sqlparse"
)

// This file is the first planning stage: lowering a parsed statement
// into a logical plan. Lowering does every piece of catalog resolution
// and validation the executor used to do inline — predicate and
// projection column binding, aggregate checking, ORDER BY resolution,
// UPDATE assignment validation — and records the outcome instead of
// acting on it. The second stage (physical.go) turns the logical plan
// into an operator template.
//
// Error *timing* is part of the engine's observable behaviour: the
// legacy executor reported an unknown WHERE column before touching any
// page, but reported aggregate/projection/ORDER BY/SET problems only
// after the scan had run (and had therefore already perturbed the
// buffer pool). The logical plan preserves that split explicitly:
// whereErr fires before the scan, deferredErr after it. The
// leakage-equivalence tests diff the buffer-pool fetch stream across
// both error classes.

// logicalScan is the WHERE half shared by SELECT, UPDATE, and DELETE:
// the predicate conjuncts resolved to schema column indices.
type logicalScan struct {
	table *Table
	where sqlparse.Where
	preds []exec.Pred

	// whereErr reports an unknown predicate column. It is raised before
	// any page is fetched, exactly as the legacy scan did.
	whereErr error
}

// logicalSelect is the lowered form of a SELECT.
type logicalSelect struct {
	scan logicalScan

	// Aggregate branch (exactly one select expression with an
	// aggregate), taken before projection. aggCol is the SUM column's
	// schema index, -1 for COUNT (which, like the legacy aggregate,
	// never resolves its argument). LIMIT applies to the single
	// aggregate row; ORDER BY over an aggregate is rejected at parse
	// time (and defensively re-checked here).
	agg     bool
	aggExpr sqlparse.SelectExpr
	aggCol  int

	// Projection branch.
	proj     []int
	sortCol  int // schema column index, -1 for no ORDER BY
	sortDesc bool
	limit    int

	// deferredErr is an aggregate, projection, or ORDER BY resolution
	// failure. The legacy executor hit these only after the scan ran, so
	// the driver drains the scan subtree first and raises this after.
	deferredErr error
}

// setOp is one validated UPDATE assignment.
type setOp struct {
	idx int
	val sqlparse.Value
}

// logicalMutate is the lowered form of an UPDATE or DELETE: the scan
// plus, for UPDATE, the validated assignments.
type logicalMutate struct {
	scan logicalScan
	sets []setOp

	// deferredErr is a SET-clause validation failure, raised after the
	// scan as the legacy executor did.
	deferredErr error
}

// lowerScan resolves the WHERE conjuncts against the table schema.
func lowerScan(t *Table, where sqlparse.Where) logicalScan {
	ls := logicalScan{table: t, where: where}
	preds := make([]exec.Pred, len(where))
	for i, p := range where {
		idx := t.ColumnIndex(p.Column)
		if idx < 0 {
			ls.whereErr = fmt.Errorf("engine: unknown column %q in WHERE", p.Column)
			return ls
		}
		preds[i] = exec.Pred{Col: idx, Op: p.Op, Arg: p.Arg}
	}
	ls.preds = preds
	return ls
}

// lowerSelect lowers a SELECT against t.
func lowerSelect(t *Table, st *sqlparse.Select) logicalSelect {
	lp := logicalSelect{scan: lowerScan(t, st.Where), sortCol: -1, aggCol: -1, limit: -1}

	if len(st.Exprs) == 1 && st.Exprs[0].Agg != sqlparse.AggNone {
		lp.agg = true
		lp.aggExpr = st.Exprs[0]
		if st.OrderBy != "" {
			// The parser rejects this; guard against hand-built ASTs.
			lp.deferredErr = fmt.Errorf("engine: %w", sqlparse.ErrAggregateOrderBy)
			return lp
		}
		switch st.Exprs[0].Agg {
		case sqlparse.AggCount:
			// COUNT ignores its argument (even an unknown column), as
			// the legacy aggregate did.
		case sqlparse.AggSum:
			idx := t.ColumnIndex(st.Exprs[0].Column)
			if idx < 0 {
				lp.deferredErr = fmt.Errorf("engine: unknown column %q in SUM", st.Exprs[0].Column)
			} else if t.Columns[idx].Type != sqlparse.TypeInt {
				lp.deferredErr = fmt.Errorf("engine: SUM over non-INT column %q", st.Exprs[0].Column)
			} else {
				lp.aggCol = idx
			}
		default:
			lp.deferredErr = fmt.Errorf("engine: %w", exec.ErrUnsupportedAggregate)
		}
		// LIMIT caps the single aggregate row (LIMIT 0 makes it empty).
		lp.limit = st.Limit
		return lp
	}

	proj, err := projection(t, st.Exprs)
	if err != nil {
		lp.deferredErr = err
		return lp
	}
	lp.proj = proj
	if st.OrderBy != "" {
		oidx := t.ColumnIndex(st.OrderBy)
		if oidx < 0 {
			lp.deferredErr = fmt.Errorf("engine: unknown ORDER BY column %q", st.OrderBy)
			return lp
		}
		lp.sortCol = oidx
		lp.sortDesc = st.Desc
	}
	lp.limit = st.Limit
	return lp
}

// lowerUpdate lowers an UPDATE against t.
func lowerUpdate(t *Table, st *sqlparse.Update) logicalMutate {
	lm := logicalMutate{scan: lowerScan(t, st.Where)}
	sets := make([]setOp, 0, len(st.Set))
	for _, a := range st.Set {
		idx := t.ColumnIndex(a.Column)
		if idx < 0 {
			lm.deferredErr = fmt.Errorf("engine: unknown column %q in SET", a.Column)
			return lm
		}
		if idx == t.PKIndex {
			lm.deferredErr = fmt.Errorf("engine: updating the primary key is not supported")
			return lm
		}
		if err := checkType(t.Columns[idx], a.Value); err != nil {
			lm.deferredErr = err
			return lm
		}
		sets = append(sets, setOp{idx, a.Value})
	}
	lm.sets = sets
	return lm
}

// lowerDelete lowers a DELETE against t.
func lowerDelete(t *Table, st *sqlparse.Delete) logicalMutate {
	return logicalMutate{scan: lowerScan(t, st.Where)}
}
