// Package engine implements the snapdb DBMS: a single-node SQL engine
// in the style of MySQL/InnoDB, assembled from the substrate packages.
// Every artifact the paper's snapshot attacks exploit is wired in:
//
//   - writes go through circular undo/redo WALs (wal) and, when the
//     binlog is enabled (the production default), into a timestamped
//     statement binlog (binlog);
//   - reads traverse per-table B+ trees (btree) through a buffer pool
//     (bufpool) that maintains LRU order, access counters, and a
//     periodic dump file;
//   - every statement is visible in the processlist (infoschema) while
//     executing and lands in performance_schema's current/history/
//     digest tables (perfschema);
//   - SELECT results are cached in the internal query cache
//     (querycache);
//   - statements that exceed the slow threshold go to the slow log and,
//     if enabled, everything goes to the general log (dblog);
//   - all query text is allocated (and insecurely freed) in a simulated
//     process heap (heap).
//
// The engine's clock is injectable so experiments can replay days of
// workload in milliseconds.
package engine

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"snapdb/internal/binlog"
	"snapdb/internal/btree"
	"snapdb/internal/bufpool"
	"snapdb/internal/crypto/prim"
	"snapdb/internal/dblog"
	"snapdb/internal/engine/exec"
	"snapdb/internal/heap"
	"snapdb/internal/infoschema"
	"snapdb/internal/perfschema"
	"snapdb/internal/querycache"
	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
	"snapdb/internal/vfs"
	"snapdb/internal/wal"
)

// Config controls which artifacts the engine maintains and how large
// they are. The zero value is normalized to production-like defaults by
// Defaults.
type Config struct {
	BufferPoolPages   int           // default 256
	RedoCapacity      int           // bytes, default wal.DefaultCapacity (50 MB)
	UndoCapacity      int           // bytes, default wal.DefaultCapacity (50 MB)
	EnableBinlog      bool          // default true: production servers replicate
	EnableGeneralLog  bool          // default false: too verbose for production
	EnableQueryCache  bool          // default true
	QueryCacheEntries int           // default querycache.DefaultCapacity
	DisablePlanCache  bool          // default false: plans are cached
	PlanCacheEntries  int           // default DefaultPlanCacheEntries
	HistoryPerThread  int           // default perfschema.DefaultHistoryPerThread
	SlowThreshold     time.Duration // default dblog.DefaultSlowThreshold
	DisableSlowLog    bool          // default false: slow log is common in production

	// StatementTimeout bounds one statement's execution: a statement
	// whose scan outlives it aborts with ErrStatementTimeout. The check
	// runs at scan-leaf row boundaries (every few dozen examined rows),
	// so a statement that never times out fetches exactly the pages it
	// always fetched, and a timed-out UPDATE/DELETE aborts during its
	// scan half, before any mutation applies. Zero (the default)
	// disables the timeout, like MySQL's max_execution_time=0.
	StatementTimeout time.Duration

	// DisableSortOptimizations forces every ORDER BY back to the full
	// Sort (+ separate Limit) plan shape, turning off the TopN
	// substitution and index-order absorption. The differential tests
	// use it to prove the optimized plans produce byte-identical
	// results, forensic artifacts, and buffer-pool fetch traces.
	DisableSortOptimizations bool

	// Parallel scan knobs. MaxScanWorkers caps the worker goroutines a
	// clustered full/range scan may split into; 0 or 1 keeps every scan
	// serial (the default — parallelism is opt-in because it reorders
	// the buffer-pool fetch trace, a leakage-profile change E15
	// measures). DisableParallelScan forces serial plans even when
	// MaxScanWorkers allows more, so differential tests can diff the
	// two shapes on one config. ParallelScanMinRows is the estimated
	// row count below which splitting isn't worth the goroutine
	// machinery (default 4096).
	MaxScanWorkers      int
	DisableParallelScan bool
	ParallelScanMinRows int64

	// DisableCostBasedPlanner reverts access-path selection to the
	// pre-statistics behavior: first index whose column matches the
	// WHERE clause wins. The cost-model tests use it as the control
	// arm.
	DisableCostBasedPlanner bool

	// SimulatedScanIOWait, when positive, models per-page-batch device
	// latency inside scan leaves: every scanIOInterval examined rows
	// the scan sleeps this long, the way SimulatedIOWait models
	// commit-path latency. The parallel-scan benchmarks use it on the
	// 1-core runner: partitioned workers overlap these waits, which is
	// exactly the wall-clock win parallel IO buys on real devices.
	// Default 0 (off), so tests and experiments are unaffected.
	SimulatedScanIOWait time.Duration

	// Hardening knobs (see internal/mitigate). All default to the
	// production-realistic (leaky) setting.
	SecureHeapDelete  bool // zeroize freed heap blocks
	DisablePerfSchema bool // no statement events, history, or digests
	ScrubProcesslist  bool // clear statement text when a query finishes

	// MVCC knobs. The engine runs multi-version snapshot isolation by
	// default: writers file each mutated row's pre-image into a version
	// chain, SELECTs resolve against a read view without taking table
	// locks, and a purge pass reclaims versions older than the oldest
	// open view. DisableMVCC reverts to the legacy stripe-locked reads
	// (the differential tests' control arm). DisablePurge retains every
	// version forever — E16's worst-case residue arm. PurgeEvery is the
	// statement interval between inline purge sweeps (default 256);
	// PurgeBatch caps the chains examined per sweep (0 = all);
	// PurgeInterval, when positive, also runs purge from a background
	// goroutine (stop it with Engine.Close).
	DisableMVCC   bool
	DisablePurge  bool
	PurgeEvery    int
	PurgeBatch    int
	PurgeInterval time.Duration

	// SimulatedIOWait, when positive, models the device latency a real
	// statement pays (page reads, commit flush) as a sleep inside the
	// statement's table-lock scope. The concurrency benchmarks and E12
	// use it: overlapping these waits across sessions is exactly the
	// throughput win that table-level locking buys over the old global
	// statement lock, independent of core count. Default 0 (off), so
	// experiments and tests are unaffected.
	SimulatedIOWait time.Duration

	// FS, when set, makes the engine durable: every WAL and binlog
	// group-commit batch is checksummed, appended and fsynced to files
	// in this filesystem before the statement returns, DDL writes a
	// crash-atomic checkpoint, and periodic buffer-pool dumps go to
	// disk. Nil (the default) keeps the engine fully in-memory, as the
	// experiments and most tests use it. Use Recover to reopen an
	// existing data directory; New on a non-empty FS starts fresh.
	FS vfs.FS

	// EncryptAtRest wraps FS in a vfs.CryptFS keyed by EncryptionKey, so
	// every persisted byte — WAL, binlog, checkpoint, buffer-pool dump —
	// is page-encrypted before it reaches the disk. DeterministicPages
	// selects the XTS-style mode (same plaintext page at the same
	// position encrypts identically — the industry default, and the
	// page-diff channel E17 demonstrates); false selects the fresh-IV
	// mitigation, which re-randomizes every page write at the cost of
	// read-modify-write amplification, an IV sidecar file, and a torn-
	// write window on page rewrites (see DESIGN.md). Defaults() sets
	// DeterministicPages; encryption itself is off unless requested.
	EncryptAtRest      bool
	EncryptionKey      prim.Key
	DeterministicPages bool
}

// Defaults returns the production-like default configuration the paper
// assumes: binlog on, slow log on, general log off, query cache on.
func Defaults() Config {
	return Config{
		BufferPoolPages:   256,
		RedoCapacity:      wal.DefaultCapacity,
		UndoCapacity:      wal.DefaultCapacity,
		EnableBinlog:      true,
		EnableQueryCache:  true,
		QueryCacheEntries: querycache.DefaultCapacity,
		PlanCacheEntries:  DefaultPlanCacheEntries,
		HistoryPerThread:  perfschema.DefaultHistoryPerThread,
		SlowThreshold:     dblog.DefaultSlowThreshold,
		// Deterministic page encryption is what shipping encrypted
		// engines default to; Config{} literal users who flip
		// EncryptAtRest get fresh-IV only by leaving this false
		// explicitly.
		DeterministicPages: true,
	}
}

// wrapEncryption applies the Config's at-rest encryption (if enabled)
// to fs, returning the FS every persistence path should use.
func wrapEncryption(fs vfs.FS, cfg Config) (vfs.FS, error) {
	if fs == nil || !cfg.EncryptAtRest {
		return fs, nil
	}
	cfs, err := vfs.NewCryptFS(fs, cfg.EncryptionKey, cfg.DeterministicPages)
	if err != nil {
		return nil, fmt.Errorf("engine: encryption at rest: %w", err)
	}
	return cfs, nil
}

func (c Config) normalized() Config {
	d := Defaults()
	if c.BufferPoolPages <= 0 {
		c.BufferPoolPages = d.BufferPoolPages
	}
	if c.RedoCapacity <= 0 {
		c.RedoCapacity = d.RedoCapacity
	}
	if c.UndoCapacity <= 0 {
		c.UndoCapacity = d.UndoCapacity
	}
	if c.QueryCacheEntries <= 0 {
		c.QueryCacheEntries = d.QueryCacheEntries
	}
	if c.PlanCacheEntries <= 0 {
		c.PlanCacheEntries = d.PlanCacheEntries
	}
	if c.HistoryPerThread <= 0 {
		c.HistoryPerThread = d.HistoryPerThread
	}
	if c.SlowThreshold <= 0 {
		c.SlowThreshold = d.SlowThreshold
	}
	if c.ParallelScanMinRows <= 0 {
		c.ParallelScanMinRows = DefaultParallelScanMinRows
	}
	if c.PurgeEvery <= 0 {
		c.PurgeEvery = DefaultPurgeEvery
	}
	return c
}

// DefaultPurgeEvery is the default statement interval between inline
// MVCC purge sweeps.
const DefaultPurgeEvery = 256

// Table is one table's catalog entry.
type Table struct {
	ID      uint8
	Name    string
	Columns []sqlparse.ColumnDef
	PKIndex int
	Tree    *btree.Tree
	Indexes []*SecondaryIndex // sorted by name

	// rows is an advisory row-count hint maintained on the DML paths;
	// scans use it to pre-size result slices. Recovery and replay seed
	// it after rebuilding the tree. It is never used for correctness.
	rows atomic.Int64

	// stats holds the planner statistics (per-column min/max/distinct)
	// last built by ANALYZE TABLE, widened incrementally by DML. Like
	// rows, it is advisory: the cost model reads it, correctness never
	// does. See stats.go.
	stats tableStats

	// latch orders MVCC readers against writers at tree granularity:
	// DML holds it exclusively across its tree mutations, an MVCC
	// SELECT holds it shared across planning and the scan. It replaces
	// the stripe lock on the read path only — writers still serialize
	// per table on the stripes, the latch just keeps a reader from
	// observing a half-applied multi-row statement.
	latch sync.RWMutex

	// mvccChains counts this table's live version chains (maintained by
	// the version store). Zero is the fast path: the tree is exactly
	// every view, so reads keep the query cache and parallel scans.
	mvccChains atomic.Int64
}

// RowHint returns the advisory row count.
func (t *Table) RowHint() int64 { return t.rows.Load() }

// AddRowHint adjusts the advisory row count (replay/recovery use it
// after repopulating the tree outside the DML paths).
func (t *Table) AddRowHint(n int64) { t.rows.Add(n) }

// ColumnIndex returns the index of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Engine is one DBMS instance.
type Engine struct {
	cfg Config

	// Clock returns UNIX seconds. Experiments override it to compress
	// time; it defaults to time.Now.
	Clock func() int64

	// ExecClock measures statement duration; overridable for tests.
	ExecClock func() time.Time

	// locks is the striped table-lock manager: shared for SELECT,
	// exclusive per table for DML, all stripes for DDL and rollback.
	// It replaced the global statement mutex, so reads run fully
	// parallel and writes to different tables don't contend; the B+
	// trees stay free of internal locking because a table's tree is
	// only ever mutated under its exclusive stripe.
	locks lockManager

	// plans is the statement plan cache (see plancache.go); nil when
	// disabled. It sits in front of the parser only: every statement,
	// hit or miss, produces the same forensic artifacts.
	plans *planCache

	// fc samples the buffer pool's cumulative fetch count; scan
	// operators use it to attribute pool activity per plan node.
	fc exec.FetchCounter

	mu          sync.Mutex
	ts          *storage.Tablespace
	pool        *bufpool.Pool
	wal         *wal.Manager
	binlog      *binlog.Log
	general     *dblog.GeneralLog
	slow        *dblog.SlowLog
	qcache      *querycache.Cache
	perf        *perfschema.Schema
	procs       *infoschema.Processlist
	arena       *heap.Arena
	tables      map[string]*Table
	tablesByID  map[uint8]*Table
	nextTableID uint8
	nextSession int
	bufpoolDump []byte // last periodic dump of the buffer pool

	// persist is the durability sink; nil for an in-memory engine.
	persist *persistor
	// openTxns counts sessions with an open explicit transaction;
	// checkpoints (and therefore DDL on a durable engine) refuse while
	// it is nonzero, because open transactions' undo information lives
	// in the WAL files a checkpoint truncates.
	openTxns atomic.Int64

	statements atomic.Uint64 // executed statement count, drives periodic dumps

	// versions is the MVCC version store; nil when Config.DisableMVCC
	// reverts to legacy stripe-locked reads. See mvcc.go.
	versions *mvccStore
	// activeTxns tracks sessions' open explicit transactions for the
	// information_schema.active_transactions surface (guarded by mu).
	activeTxns map[int]*txnState
	// purgeStop terminates the background purge goroutine (when
	// Config.PurgeInterval started one); closed once by Close.
	purgeStop chan struct{}
	purgeOnce sync.Once
}

// DumpInterval is how many statements pass between periodic buffer-pool
// dumps (MySQL dumps on a timer; we dump on statement count so
// experiments are deterministic).
const DumpInterval = 100

// New creates an engine with the given configuration.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.normalized()
	ts := storage.NewTablespace()
	pool, err := bufpool.New(ts, cfg.BufferPoolPages)
	if err != nil {
		return nil, err
	}
	wm, err := wal.NewManager(cfg.RedoCapacity, cfg.UndoCapacity)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:        cfg,
		Clock:      func() int64 { return time.Now().Unix() },
		ExecClock:  time.Now,
		ts:         ts,
		pool:       pool,
		wal:        wm,
		binlog:     binlog.New(),
		general:    dblog.NewGeneralLog(),
		slow:       dblog.NewSlowLog(),
		qcache:     querycache.New(cfg.QueryCacheEntries),
		perf:       perfschema.New(cfg.HistoryPerThread),
		procs:      infoschema.New(),
		arena:      heap.NewArena(),
		tables:     make(map[string]*Table),
		tablesByID: make(map[uint8]*Table),
		activeTxns: make(map[int]*txnState),
	}
	e.fc = pool.FetchCount
	if !cfg.DisableMVCC {
		e.versions = newMVCCStore()
		if cfg.PurgeInterval > 0 && !cfg.DisablePurge {
			e.purgeStop = make(chan struct{})
			go e.purgeLoop(cfg.PurgeInterval)
		}
	}
	if !cfg.DisablePlanCache {
		e.plans = newPlanCache(cfg.PlanCacheEntries)
	}
	// Binlog events are stamped with the engine LSN at commit time, the
	// ordering the forensic LSN↔timestamp correlation consumes.
	e.binlog.LSNSource = wm.CurrentLSN
	e.general.Enabled = cfg.EnableGeneralLog
	e.qcache.Enabled = cfg.EnableQueryCache
	e.slow.Enabled = !cfg.DisableSlowLog
	e.slow.Threshold = cfg.SlowThreshold
	e.arena.SecureDelete = cfg.SecureHeapDelete
	e.procs.Scrub = cfg.ScrubProcesslist
	if cfg.FS != nil {
		fs, err := wrapEncryption(cfg.FS, cfg)
		if err != nil {
			return nil, err
		}
		if err := e.attachPersist(fs, 0, 0, 0); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// attachPersist wires the durability sink into the WAL and binlog
// group-commit pipelines. The offsets are the valid prefixes of the
// existing log files (zero for a fresh engine); anything beyond them is
// truncated away.
func (e *Engine) attachPersist(fs vfs.FS, redoOff, undoOff, blogOff int64) error {
	p, err := newPersistor(fs, redoOff, undoOff, blogOff)
	if err != nil {
		return err
	}
	e.persist = p
	e.wal.Sink = p.appendWAL
	e.binlog.Sink = p.appendBinlog
	return nil
}

// Config returns the normalized configuration.
func (e *Engine) Config() Config { return e.cfg }

// ErrStatementTimeout is the typed error a statement aborts with when
// it exceeds Config.StatementTimeout. It surfaces through the server as
// an ordinary ERR reply; the statement has no side effects (the scan
// half aborts before any mutation runs), so clients may safely resubmit.
var ErrStatementTimeout = errors.New("engine: statement timeout exceeded")

// Session is one client connection.
type Session struct {
	eng  *Engine
	ID   int
	User string

	// deadline is the running statement's absolute cutoff (zero when
	// Config.StatementTimeout is off); executeWith arms it per statement
	// and the exec scan leaves consult it via deadlineCheck.
	deadline time.Time

	// histPtrs holds the heap blocks backing this session's
	// events_statements_history ring: the statement text stays live for
	// HistoryPerThread statements and is then insecurely freed.
	histPtrs []heap.Ptr

	// txn is the open explicit transaction, nil in autocommit mode.
	txn *txnState

	// nextTxnReadOnly applies SET TRANSACTION READ ONLY to the next
	// BEGIN on this session (one-shot, like MySQL's statement-scoped
	// form).
	nextTxnReadOnly bool
}

// Connect opens a new session.
func (e *Engine) Connect(user string) *Session {
	e.mu.Lock()
	e.nextSession++
	id := e.nextSession
	e.mu.Unlock()
	e.procs.Register(id, user)
	return &Session{eng: e, ID: id, User: user}
}

// Close ends the session.
func (s *Session) Close() { s.eng.procs.Unregister(s.ID) }

// rejectReadOnlyTxn refuses DML inside a SET TRANSACTION READ ONLY
// transaction, like MySQL's ER_CANT_EXECUTE_IN_READ_ONLY_TRANSACTION.
func (s *Session) rejectReadOnlyTxn(stmt string) error {
	if s.txn != nil && s.txn.readOnly {
		return fmt.Errorf("engine: cannot execute %s in a READ ONLY transaction", stmt)
	}
	return nil
}

// Result is the outcome of one statement.
type Result struct {
	Columns      []string
	Rows         []storage.Record
	RowsAffected int
	RowsExamined int
	FromCache    bool
	// AccessPath reports how the statement's scan ran: "", "full-scan",
	// "pk-range", or "index:<name>". Tests and demos use it; it also
	// documents that access paths are query-dependent, which is what
	// makes buffer-pool state revealing.
	AccessPath string

	// stages holds the per-operator runtime counters of a successful
	// operator-tree execution; Session.Execute records them into
	// perfschema's events_stages surface.
	stages []perfschema.StageEvent

	// Cost-model outputs for the executed plan, consumed by EXPLAIN
	// ANALYZE's rendering (estimated-vs-actual annotation on the scan
	// line). scanDesc names the leaf operator the estimates belong to.
	estRows  int64
	estCost  float64
	scanDesc string
}

// execFn is the statement-execution back half. Session.Execute uses
// (*Engine).execute; the equivalence tests swap in a frozen copy of the
// pre-operator executor to prove the refactor left every forensic
// artifact byte-identical.
type execFn func(e *Engine, s *Session, query string, pl *plan, parseErr error, ts int64) (*Result, error)

// Execute runs one SQL statement on this session.
func (s *Session) Execute(query string) (*Result, error) {
	return s.executeWith(query, (*Engine).execute)
}

// NoteReplay records the arrival of a statement the server answered
// from its exactly-once dedup cache instead of executing. Like MySQL's
// general log, the log records arrivals, not executions — so a
// replayed retry leaves a duplicate general-log record (same text, a
// later timestamp) without touching any other artifact. That residue
// is precisely the retry-forensics channel E14 measures.
func (s *Session) NoteReplay(query string) {
	e := s.eng
	e.general.Record(dblog.Entry{Timestamp: e.Clock(), Session: s.ID, Statement: query})
}

// deadlineCheck returns the exec-layer deadline check for the running
// statement, or nil when no deadline is armed (the common case — a nil
// check keeps the scan loop's fast path branch-predictable).
func (s *Session) deadlineCheck() exec.DeadlineCheck {
	if s.deadline.IsZero() {
		return nil
	}
	e, dl := s.eng, s.deadline
	return func() error {
		if e.ExecClock().After(dl) {
			return fmt.Errorf("%w (max_execution_time %v)", ErrStatementTimeout, e.cfg.StatementTimeout)
		}
		return nil
	}
}

// executeWith is Execute with the execution back half injected.
func (s *Session) executeWith(query string, fn execFn) (*Result, error) {
	e := s.eng
	start := e.ExecClock()
	ts := e.Clock()

	// Arm (or clear) the statement deadline. The scan leaves consult it
	// via Session.deadlineCheck at row boundaries; everything else on
	// the statement path runs in bounded time.
	if e.cfg.StatementTimeout > 0 {
		s.deadline = start.Add(e.cfg.StatementTimeout)
	} else {
		s.deadline = time.Time{}
	}

	// Statement pipeline front half: a plan-cache hit skips the lexer
	// and parser and reuses the digest computed when the statement text
	// was first seen. Parsing has no forensic side effects, so doing it
	// here (or not doing it, on a hit) leaves every artifact below
	// byte-identical; a parse error is carried into execute and
	// surfaces at the same point it always did.
	pl, parseErr := e.planFor(query)
	var digestText, digestHash string
	if pl != nil {
		digestText, digestHash = pl.digest, pl.dhash
	} else {
		digestText = sqlparse.Digest(query)
		digestHash = sqlparse.HashDigestText(digestText)
	}

	// Query text passes through several heap buffers, as in a real
	// DBMS: the connection receive buffer, the parser's working copy,
	// the digest/canonicalization buffer (freed after execution), and
	// the statement-history ring entry (freed HistoryPerThread
	// statements later). None is securely deleted.
	connBuf := e.arena.AllocString(query)
	parseBuf := e.arena.AllocString(query)
	digestBuf := e.arena.AllocString(digestText)
	if !e.cfg.DisablePerfSchema {
		s.histPtrs = append(s.histPtrs, e.arena.AllocString(query))
		if len(s.histPtrs) > e.cfg.HistoryPerThread {
			_ = e.arena.Free(s.histPtrs[0])
			s.histPtrs = s.histPtrs[1:]
		}
	}

	e.procs.SetQuery(s.ID, query, ts)
	if !e.cfg.DisablePerfSchema {
		e.perf.BeginStatementWithDigest(s.ID, query, digestHash, digestText, ts)
	}

	res, err := fn(e, s, query, pl, parseErr, ts)

	dur := e.ExecClock().Sub(start)
	examined, returned := 0, 0
	if res != nil {
		examined = res.RowsExamined
		returned = len(res.Rows)
		if res.RowsAffected > 0 && returned == 0 {
			returned = res.RowsAffected
		}
	}
	if !e.cfg.DisablePerfSchema {
		e.perf.EndStatement(s.ID, examined, returned, dur)
		if res != nil && len(res.stages) > 0 {
			e.perf.AddStages(s.ID, ts, digestHash, res.stages)
		}
	}
	e.procs.ClearQuery(s.ID)
	e.general.Record(dblog.Entry{Timestamp: ts, Session: s.ID, Duration: dur, Statement: query})
	e.slow.Record(dblog.Entry{Timestamp: ts, Session: s.ID, Duration: dur, Statement: query})

	// Insecure frees: the bytes stay in the heap.
	_ = e.arena.Free(connBuf)
	_ = e.arena.Free(parseBuf)
	_ = e.arena.Free(digestBuf)

	n := e.statements.Add(1)
	if n%DumpInterval == 0 {
		dump := e.pool.DumpFile()
		e.mu.Lock()
		e.bufpoolDump = dump
		e.mu.Unlock()
		if e.persist != nil {
			// Best-effort, like MySQL's periodic dump: the statement
			// already succeeded, and recovery validates the dump's
			// checksum before trusting it.
			_ = e.persist.writeDump(dump)
		}
	}
	// Inline MVCC purge, the deterministic analogue of InnoDB's purge
	// thread (a background goroutine also runs when PurgeInterval is
	// set). Statement-count driven so experiments can reproduce the
	// residue window exactly.
	if e.versions != nil && !e.cfg.DisablePurge && n%uint64(e.cfg.PurgeEvery) == 0 {
		e.versions.purge(e.cfg.PurgeBatch)
	}
	return res, err
}

// isSystemTable reports whether name is a virtual diagnostic table.
// Those are served straight from the internally synchronized substrate
// packages, so they need no table lock.
func isSystemTable(name string) bool {
	return strings.HasPrefix(name, "information_schema.") ||
		strings.HasPrefix(name, "performance_schema.")
}

// simulateIO models per-statement device latency (see
// Config.SimulatedIOWait). It runs inside the statement's lock scope:
// shared-locked readers overlap their waits, which is the concurrency
// win the scaling benchmarks measure.
func (e *Engine) simulateIO() {
	if d := e.cfg.SimulatedIOWait; d > 0 {
		time.Sleep(d)
	}
}

// execute takes the locks the statement class needs and dispatches. The
// plan (parsed AST plus bindings) comes from the statement pipeline's
// front half; a parse failure is surfaced here, after the pre-statement
// artifacts have been recorded, exactly where the inline Parse used to
// fail.
func (e *Engine) execute(s *Session, query string, pl *plan, parseErr error, ts int64) (*Result, error) {
	if parseErr != nil {
		return nil, parseErr
	}
	switch st := pl.stmt.(type) {
	case *sqlparse.CreateTable:
		e.locks.lockAll()
		defer e.locks.unlockAll()
		e.simulateIO()
		return e.execCreate(st, query, ts)
	case *sqlparse.CreateIndex:
		e.locks.lockAll()
		defer e.locks.unlockAll()
		e.simulateIO()
		return e.execCreateIndex(s, st, query, ts)
	case *sqlparse.Insert:
		if err := s.rejectReadOnlyTxn("INSERT"); err != nil {
			return nil, err
		}
		mu := e.locks.exclusive(st.Table)
		defer mu.Unlock()
		e.simulateIO()
		return e.execInsert(s, st, pl, query, ts)
	case *sqlparse.Select:
		if isSystemTable(st.Table) {
			return e.execSelect(s, st, pl, query)
		}
		if e.versions != nil {
			// MVCC consistent read: no table lock at all — visibility
			// comes from the statement's read view (see mvcc.go).
			return e.execSelectMVCC(s, st, pl, query)
		}
		mu := e.locks.shared(st.Table)
		defer mu.RUnlock()
		e.simulateIO()
		return e.execSelect(s, st, pl, query)
	case *sqlparse.Update:
		if err := s.rejectReadOnlyTxn("UPDATE"); err != nil {
			return nil, err
		}
		mu := e.locks.exclusive(st.Table)
		defer mu.Unlock()
		e.simulateIO()
		return e.execUpdate(s, st, pl, query, ts)
	case *sqlparse.Delete:
		if err := s.rejectReadOnlyTxn("DELETE"); err != nil {
			return nil, err
		}
		mu := e.locks.exclusive(st.Table)
		defer mu.Unlock()
		e.simulateIO()
		return e.execDelete(s, st, pl, query, ts)
	case *sqlparse.AnalyzeTable:
		// ANALYZE only reads the table (one clustered scan) and writes
		// the advisory stats, so readers may share the lock with it;
		// DML is excluded so the scan sees a stable tree.
		mu := e.locks.shared(st.Table)
		defer mu.RUnlock()
		e.simulateIO()
		return e.execAnalyzeTable(s, st, query, ts)
	case *sqlparse.TxnControl:
		if st.Op == sqlparse.TxnRollback {
			// Rollback replays undo records that may span tables.
			e.locks.lockAll()
			defer e.locks.unlockAll()
		}
		return e.execTxnControl(s, st, ts)
	case *sqlparse.SetTxn:
		if s.txn != nil {
			return nil, fmt.Errorf("engine: SET TRANSACTION not allowed inside an open transaction")
		}
		s.nextTxnReadOnly = st.ReadOnly
		return &Result{}, nil
	case *sqlparse.DropTable:
		if s.txn != nil {
			// DDL is not transactional; refusing inside a txn keeps the
			// undo log from referencing a vanished table on rollback.
			return nil, fmt.Errorf("engine: DROP TABLE inside an open transaction is not supported")
		}
		e.locks.lockAll()
		defer e.locks.unlockAll()
		e.simulateIO()
		return e.execDrop(st, query, ts)
	case *sqlparse.Explain:
		if st.Analyze {
			// EXPLAIN ANALYZE runs the wrapped statement for real, so it
			// takes the wrapped statement's locks (in execExplainAnalyze).
			return e.execExplainAnalyze(s, st, ts)
		}
		// Plain EXPLAIN plans only, reading just the catalog
		// (e.mu-guarded) — no page is fetched and no tree is walked, so
		// no table lock is needed.
		return e.execExplain(st)
	default:
		return nil, fmt.Errorf("engine: unsupported statement %T", pl.stmt)
	}
}

func (e *Engine) execCreate(st *sqlparse.CreateTable, query string, ts int64) (*Result, error) {
	if e.persist != nil {
		if n := e.openTxns.Load(); n != 0 {
			return nil, fmt.Errorf("engine: DDL refused: %d open transaction(s)", n)
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, exists := e.tables[st.Table]; exists {
		return nil, fmt.Errorf("engine: table %q already exists", st.Table)
	}
	if len(st.Columns) == 0 {
		return nil, fmt.Errorf("engine: table %q has no columns", st.Table)
	}
	pk := 0
	found := false
	for i, c := range st.Columns {
		if c.PrimaryKey {
			if found {
				return nil, fmt.Errorf("engine: table %q has multiple primary keys", st.Table)
			}
			pk = i
			found = true
		}
	}
	if pk != 0 {
		return nil, fmt.Errorf("engine: primary key must be the first column (clustered index)")
	}
	if e.nextTableID == 0xFF {
		return nil, fmt.Errorf("engine: table limit reached")
	}
	e.nextTableID++
	t := &Table{
		ID:      e.nextTableID,
		Name:    st.Table,
		Columns: st.Columns,
		PKIndex: pk,
		Tree:    btree.New(e.ts, e.pool),
	}
	e.tables[st.Table] = t
	e.tablesByID[t.ID] = t
	// DDL invalidates every cached plan: statements parsed against the
	// old catalog may now resolve differently.
	if e.plans != nil {
		e.plans.bumpEpoch()
	}
	if e.cfg.EnableBinlog {
		if err := e.binlog.Commit(binlog.Event{Timestamp: ts, Statement: query}); err != nil {
			return nil, fmt.Errorf("engine: binlog: %w", err)
		}
	}
	// The catalog is not WAL-logged; on a durable engine DDL persists by
	// checkpointing, so every later WAL record references a table the
	// checkpoint already knows. (execute holds all locks; e.mu must be
	// released for the checkpoint's own locking.)
	e.mu.Unlock()
	err := e.checkpointLocked()
	e.mu.Lock()
	if err != nil {
		return nil, fmt.Errorf("engine: DDL checkpoint: %w", err)
	}
	return &Result{}, nil
}

// execDrop removes a table from the catalog. The tree's pages are not
// scrubbed — like InnoDB, dropping is a catalog operation, and any
// in-flight MVCC reader keeps scanning the orphaned tree safely — but
// the version store's chains for the table are discarded.
func (e *Engine) execDrop(st *sqlparse.DropTable, query string, ts int64) (*Result, error) {
	if e.persist != nil {
		if n := e.openTxns.Load(); n != 0 {
			return nil, fmt.Errorf("engine: DDL refused: %d open transaction(s)", n)
		}
	}
	e.mu.Lock()
	t, ok := e.tables[st.Table]
	if !ok {
		e.mu.Unlock()
		return nil, fmt.Errorf("engine: unknown table %q", st.Table)
	}
	delete(e.tables, st.Table)
	delete(e.tablesByID, t.ID)
	if e.plans != nil {
		e.plans.bumpEpoch()
	}
	e.mu.Unlock()
	if e.versions != nil {
		e.versions.dropTable(t.ID)
	}
	e.qcache.InvalidateTable(t.Name)
	if e.cfg.EnableBinlog {
		if err := e.binlog.Commit(binlog.Event{Timestamp: ts, Statement: query}); err != nil {
			return nil, fmt.Errorf("engine: binlog: %w", err)
		}
	}
	if err := e.checkpointLocked(); err != nil {
		return nil, fmt.Errorf("engine: DDL checkpoint: %w", err)
	}
	return &Result{}, nil
}

// lookupTable returns the catalog entry, including virtual system tables.
func (e *Engine) lookupTable(name string) (*Table, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tables[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown table %q", name)
	}
	return t, nil
}

// Table returns the catalog entry for a table (used by EDB layers that
// need schema information).
func (e *Engine) Table(name string) (*Table, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tables[name]
	return t, ok
}

// Tables returns all user tables sorted by name.
func (e *Engine) Tables() []*Table {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Table, 0, len(e.tables))
	for _, t := range e.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (e *Engine) execInsert(s *Session, st *sqlparse.Insert, pl *plan, query string, ts int64) (*Result, error) {
	t, err := e.planTable(pl, st.Table)
	if err != nil {
		return nil, err
	}
	rows := make([]storage.Record, 0, len(st.Rows))
	for _, tuple := range st.Rows {
		row, err := buildRow(t, st.Columns, tuple)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	txn, auto := s.stmtTxn(e)
	touched := false
	if auto && e.versions != nil {
		// Versions written by an autocommit statement become visible
		// when it finishes — even on a mid-statement error, because the
		// in-place tree writes before the error persist exactly as they
		// always did.
		defer func() {
			if touched {
				e.versions.commit(txn)
			}
		}()
	}
	// The write latch covers the whole mutation loop: MVCC readers
	// (which take no stripe) never observe a half-applied statement.
	if err := func() error {
		t.latch.Lock()
		defer t.latch.Unlock()
		for _, row := range rows {
			if err := t.Tree.Insert(row); err != nil {
				return err
			}
			if err := indexInsertRow(t, row); err != nil {
				return err
			}
			e.noteVersion(t, row[t.PKIndex], nil, false, txn)
			touched = true
			_, undo, err := e.wal.TxInsert(txn, t.ID, row)
			if err != nil {
				return fmt.Errorf("engine: wal: %w", err)
			}
			s.noteUndo(undo)
		}
		return nil
	}(); err != nil {
		return nil, err
	}
	e.qcache.InvalidateTable(t.Name)
	if err := s.emitBinlog(e, binlog.Event{Timestamp: ts, Statement: query}); err != nil {
		return nil, err
	}
	if auto && len(rows) > 0 {
		if err := e.wal.LogCommit(txn); err != nil {
			return nil, fmt.Errorf("engine: wal commit: %w", err)
		}
	}
	t.rows.Add(int64(len(rows)))
	for _, row := range rows {
		t.statsNoteInsert(row)
	}
	e.maybeStatsDrift(t)
	return &Result{RowsAffected: len(rows)}, nil
}

// buildRow places tuple values into schema order, checking types.
func buildRow(t *Table, cols []string, tuple []sqlparse.Value) (storage.Record, error) {
	if len(cols) != len(t.Columns) {
		return nil, fmt.Errorf("engine: INSERT must list all %d columns of %q", len(t.Columns), t.Name)
	}
	row := make(storage.Record, len(t.Columns))
	seen := make(map[int]bool, len(cols))
	for i, name := range cols {
		idx := t.ColumnIndex(name)
		if idx < 0 {
			return nil, fmt.Errorf("engine: unknown column %q in table %q", name, t.Name)
		}
		if seen[idx] {
			return nil, fmt.Errorf("engine: duplicate column %q", name)
		}
		seen[idx] = true
		v := tuple[i]
		if err := checkType(t.Columns[idx], v); err != nil {
			return nil, err
		}
		row[idx] = v
	}
	return row, nil
}

func checkType(col sqlparse.ColumnDef, v sqlparse.Value) error {
	if col.Type == sqlparse.TypeInt && !v.IsInt {
		return fmt.Errorf("engine: column %q is INT, got string %q", col.Name, v.Str)
	}
	if col.Type == sqlparse.TypeText && v.IsInt {
		return fmt.Errorf("engine: column %q is TEXT, got integer %d", col.Name, v.Int)
	}
	return nil
}

// execSelect is a thin driver over the operator tree: resolve the
// table, consult the query cache, fetch (or build) the physical
// template, instantiate, drain, and package the result. The access
// path, predicate evaluation, sorting, aggregation, projection, and
// LIMIT all live in the operators now (internal/engine/exec); the
// planning lives in logical.go/physical.go.
func (e *Engine) execSelect(s *Session, st *sqlparse.Select, pl *plan, query string) (*Result, error) {
	if res, ok := e.systemSelect(st); ok {
		return res, nil
	}
	t, err := e.planTable(pl, st.Table)
	if err != nil {
		return nil, err
	}
	if cached, ok := e.qcache.Get(query); ok {
		return &Result{Columns: selectColumns(t, st), Rows: cached, FromCache: true}, nil
	}
	pp := e.physSelect(pl, t, st)
	if pp.whereErr != nil {
		// Unknown WHERE column: reported before any page is fetched.
		return nil, pp.whereErr
	}
	pi := pp.instantiate(e.fc)
	pi.armDeadline(s.deadlineCheck())
	rows, err := pi.drain()
	if err != nil {
		return nil, err
	}
	if pp.deferredErr != nil {
		// Aggregate/projection/ORDER BY resolution errors surface after
		// the scan has run, as they always did.
		return nil, pp.deferredErr
	}
	res := &Result{
		Columns:      selectColumns(t, st),
		Rows:         rows,
		RowsExamined: pi.examined(),
		AccessPath:   pp.path,
		stages:       pi.stages(),
		estRows:      pp.estRows,
		estCost:      pp.estCost,
		scanDesc:     pi.leaf.Describe(),
	}
	e.qcache.Put(query, t.Name, rows)
	return res, nil
}

// pkBounds extracts [lo, hi] bounds on the primary key from the WHERE
// clause if every needed bound is present.
func pkBounds(t *Table, where sqlparse.Where) (lo, hi sqlparse.Value, ok bool) {
	pkName := t.Columns[t.PKIndex].Name
	var haveLo, haveHi bool
	for _, p := range where {
		if p.Column != pkName {
			continue
		}
		switch p.Op {
		case sqlparse.OpEq:
			return p.Arg, p.Arg, true
		case sqlparse.OpGe, sqlparse.OpGt:
			if !haveLo || p.Arg.Compare(lo) > 0 {
				lo, haveLo = p.Arg, true
			}
		case sqlparse.OpLe, sqlparse.OpLt:
			if !haveHi || p.Arg.Compare(hi) < 0 {
				hi, haveHi = p.Arg, true
			}
		}
	}
	return lo, hi, haveLo && haveHi
}

func selectColumns(t *Table, st *sqlparse.Select) []string {
	out := make([]string, 0, len(st.Exprs))
	for _, ex := range st.Exprs {
		switch {
		case ex.Agg != sqlparse.AggNone:
			out = append(out, ex.SQL())
		case ex.Column == "*":
			for _, c := range t.Columns {
				out = append(out, c.Name)
			}
		default:
			out = append(out, ex.Column)
		}
	}
	return out
}

// projection maps select expressions to schema column indices,
// expanding *.
func projection(t *Table, exprs []sqlparse.SelectExpr) ([]int, error) {
	out := make([]int, 0, len(exprs))
	for _, ex := range exprs {
		if ex.Agg != sqlparse.AggNone {
			return nil, fmt.Errorf("engine: cannot mix aggregates and columns")
		}
		if ex.Column == "*" {
			for i := range t.Columns {
				out = append(out, i)
			}
			continue
		}
		idx := t.ColumnIndex(ex.Column)
		if idx < 0 {
			return nil, fmt.Errorf("engine: unknown column %q", ex.Column)
		}
		out = append(out, idx)
	}
	return out, nil
}

// execUpdate drives the scan half through the operator tree (the same
// planner and operators as SELECT, minus projection), then applies the
// mutation loop to the matched rows.
func (e *Engine) execUpdate(s *Session, st *sqlparse.Update, pl *plan, query string, ts int64) (*Result, error) {
	t, err := e.planTable(pl, st.Table)
	if err != nil {
		return nil, err
	}
	pp := e.physUpdate(pl, t, st)
	if pp.whereErr != nil {
		return nil, pp.whereErr
	}
	pi := pp.instantiate(e.fc)
	// The deadline arms only the scan half: a timed-out UPDATE aborts
	// here, before any WAL record or index mutation, so it has no
	// partial effects and is safe to resubmit.
	pi.armDeadline(s.deadlineCheck())
	rows, err := pi.drain()
	if err != nil {
		return nil, err
	}
	if pp.deferredErr != nil {
		// SET-clause validation failures surface after the scan, where
		// the inline validation loop used to run.
		return nil, pp.deferredErr
	}
	txn, auto := s.stmtTxn(e)
	touched := false
	if auto && e.versions != nil {
		defer func() {
			if touched {
				e.versions.commit(txn)
			}
		}()
	}
	if err := func() error {
		t.latch.Lock()
		defer t.latch.Unlock()
		for _, old := range rows {
			// File the pre-image before the first byte of this row
			// changes; the tree's Update replaces the stored record, so
			// old stays intact for the chain.
			e.noteVersion(t, old[t.PKIndex], old, false, txn)
			touched = true
			updated := old.Clone()
			for _, op := range pp.sets {
				// Byte-level change records, one per modified column.
				_, undo, err := e.wal.TxUpdate(txn, t.ID,
					storage.Record{old[t.PKIndex]}, uint8(op.idx),
					storage.Record{old[op.idx]}, storage.Record{op.val})
				if err != nil {
					return fmt.Errorf("engine: wal: %w", err)
				}
				s.noteUndo(undo)
				if err := indexUpdateColumn(t, old[t.PKIndex], op.idx, old[op.idx], op.val); err != nil {
					return err
				}
				t.statsNoteUpdate(op.idx, op.val)
				updated[op.idx] = op.val
			}
			if _, err := t.Tree.Update(old[t.PKIndex], updated); err != nil {
				return err
			}
		}
		return nil
	}(); err != nil {
		return nil, err
	}
	e.qcache.InvalidateTable(t.Name)
	if len(rows) > 0 {
		if err := s.emitBinlog(e, binlog.Event{Timestamp: ts, Statement: query}); err != nil {
			return nil, err
		}
		if auto {
			if err := e.wal.LogCommit(txn); err != nil {
				return nil, fmt.Errorf("engine: wal commit: %w", err)
			}
		}
	}
	return &Result{RowsAffected: len(rows), RowsExamined: pi.examined(), stages: pi.stages(),
		estRows: pp.estRows, estCost: pp.estCost, scanDesc: pi.leaf.Describe()}, nil
}

// execDelete drives the scan half through the operator tree, then
// removes the matched rows.
func (e *Engine) execDelete(s *Session, st *sqlparse.Delete, pl *plan, query string, ts int64) (*Result, error) {
	t, err := e.planTable(pl, st.Table)
	if err != nil {
		return nil, err
	}
	pp := e.physDelete(pl, t, st)
	if pp.whereErr != nil {
		return nil, pp.whereErr
	}
	pi := pp.instantiate(e.fc)
	// Scan-half only, like UPDATE: no row is deleted once the deadline
	// fires mid-scan.
	pi.armDeadline(s.deadlineCheck())
	rows, err := pi.drain()
	if err != nil {
		return nil, err
	}
	txn, auto := s.stmtTxn(e)
	touched := false
	if auto && e.versions != nil {
		defer func() {
			if touched {
				e.versions.commit(txn)
			}
		}()
	}
	t.rows.Add(-int64(len(rows)))
	e.maybeStatsDrift(t)
	if err := func() error {
		t.latch.Lock()
		defer t.latch.Unlock()
		for _, old := range rows {
			// The deleted row's image goes into the version chain as a
			// tombstoned pre-image — the "deleted data persists" residue
			// E16 recovers until purge drops the chain.
			e.noteVersion(t, old[t.PKIndex], old, true, txn)
			touched = true
			if _, err := t.Tree.Delete(old[t.PKIndex]); err != nil {
				return err
			}
			if err := indexDeleteRow(t, old); err != nil {
				return err
			}
			_, undo, err := e.wal.TxDelete(txn, t.ID, old)
			if err != nil {
				return fmt.Errorf("engine: wal: %w", err)
			}
			s.noteUndo(undo)
		}
		return nil
	}(); err != nil {
		return nil, err
	}
	e.qcache.InvalidateTable(t.Name)
	if len(rows) > 0 {
		if err := s.emitBinlog(e, binlog.Event{Timestamp: ts, Statement: query}); err != nil {
			return nil, err
		}
		if auto {
			if err := e.wal.LogCommit(txn); err != nil {
				return nil, fmt.Errorf("engine: wal commit: %w", err)
			}
		}
	}
	return &Result{RowsAffected: len(rows), RowsExamined: pi.examined(), stages: pi.stages(),
		estRows: pp.estRows, estCost: pp.estCost, scanDesc: pi.leaf.Describe()}, nil
}
