package engine

import "sync"

// numLockStripes is the size of the lock table. Tables hash onto
// stripes, so two tables rarely share a lock; when they do the only
// cost is false contention, never a correctness issue.
const numLockStripes = 32

// lockManager provides the engine's striped table locks. SELECTs take
// a shared lock on their table's stripe, so reads of one table run
// fully parallel; DML takes the stripe exclusively, so writes serialize
// per table but writes to different tables (different stripes) do not
// contend. DDL and multi-table rollback take every stripe in index
// order, which together with single-stripe statements holding at most
// one lock makes the discipline deadlock-free.
//
// Locks are statement-scoped, not transaction-scoped: an open
// transaction's uncommitted changes are visible to other sessions, as
// they were under the old global statement lock.
type lockManager struct {
	stripes [numLockStripes]sync.RWMutex
}

// stripe maps a table name to its lock via FNV-1a.
func (lm *lockManager) stripe(table string) *sync.RWMutex {
	h := uint32(2166136261)
	for i := 0; i < len(table); i++ {
		h ^= uint32(table[i])
		h *= 16777619
	}
	return &lm.stripes[h%numLockStripes]
}

// shared takes the table's stripe shared and returns it for RUnlock.
func (lm *lockManager) shared(table string) *sync.RWMutex {
	mu := lm.stripe(table)
	mu.RLock()
	return mu
}

// exclusive takes the table's stripe exclusively and returns it for
// Unlock.
func (lm *lockManager) exclusive(table string) *sync.RWMutex {
	mu := lm.stripe(table)
	mu.Lock()
	return mu
}

// lockAll takes every stripe exclusively, in index order. DDL (catalog
// changes, index backfill) and rollback (undo may span tables) use it.
func (lm *lockManager) lockAll() {
	for i := range lm.stripes {
		lm.stripes[i].Lock()
	}
}

// unlockAll releases every stripe after lockAll.
func (lm *lockManager) unlockAll() {
	for i := range lm.stripes {
		lm.stripes[i].Unlock()
	}
}
