package engine

import (
	"sort"
	"time"

	"snapdb/internal/binlog"
	"snapdb/internal/bufpool"
	"snapdb/internal/dblog"
	"snapdb/internal/heap"
	"snapdb/internal/infoschema"
	"snapdb/internal/perfschema"
	"snapdb/internal/querycache"
	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
	"snapdb/internal/wal"
)

// systemSelect serves the virtual diagnostic tables that §4 of the
// paper shows are reachable through any SQL execution path, including
// an injected query: information_schema.processlist and the
// performance_schema statement tables. Returns (result, true) when the
// statement targeted a system table.
func (e *Engine) systemSelect(st *sqlparse.Select) (*Result, bool) {
	switch st.Table {
	case "information_schema.processlist":
		rows := e.procs.Snapshot()
		out := &Result{Columns: []string{"id", "user", "state", "started", "info"}}
		for _, p := range rows {
			out.Rows = append(out.Rows, storage.Record{
				sqlparse.IntValue(int64(p.ID)),
				sqlparse.StrValue(p.User),
				sqlparse.StrValue(p.State),
				sqlparse.IntValue(p.Started),
				sqlparse.StrValue(p.Statement),
			})
		}
		return out, true
	case "performance_schema.events_statements_current":
		out := &Result{Columns: []string{"thread", "timestamp", "sql_text", "digest", "rows_examined", "rows_sent"}}
		for _, ev := range e.perf.Current() {
			out.Rows = append(out.Rows, statementEventRow(ev))
		}
		return out, true
	case "performance_schema.events_statements_history":
		out := &Result{Columns: []string{"thread", "timestamp", "sql_text", "digest", "rows_examined", "rows_sent"}}
		for _, ev := range e.perf.History() {
			out.Rows = append(out.Rows, statementEventRow(ev))
		}
		return out, true
	case "performance_schema.events_stages_history":
		out := &Result{Columns: []string{"thread", "timestamp", "digest", "seq", "depth", "operator", "rows_examined", "rows_returned", "pool_fetches"}}
		for _, ev := range e.perf.StagesHistory() {
			out.Rows = append(out.Rows, storage.Record{
				sqlparse.IntValue(int64(ev.Thread)),
				sqlparse.IntValue(ev.Timestamp),
				sqlparse.StrValue(ev.Digest),
				sqlparse.IntValue(int64(ev.Seq)),
				sqlparse.IntValue(int64(ev.Depth)),
				sqlparse.StrValue(ev.Operator),
				sqlparse.IntValue(int64(ev.RowsExamined)),
				sqlparse.IntValue(int64(ev.RowsReturned)),
				sqlparse.IntValue(int64(ev.PoolFetches)),
			})
		}
		return out, true
	case "information_schema.table_statistics":
		// One row per analyzed table: when ANALYZE last ran, the row
		// count it saw (the drift baseline), and the live row hint.
		// Never-analyzed tables are omitted — they have no statistics
		// to show, which is itself the signal the planner acts on.
		out := &Result{Columns: []string{"table_name", "analyzed_at", "baseline_rows", "live_rows"}}
		for _, t := range e.Tables() {
			analyzed, at, baseline, _ := t.statsSnapshot()
			if !analyzed {
				continue
			}
			out.Rows = append(out.Rows, storage.Record{
				sqlparse.StrValue(t.Name),
				sqlparse.IntValue(at),
				sqlparse.IntValue(baseline),
				sqlparse.IntValue(t.rows.Load()),
			})
		}
		return out, true
	case "information_schema.index_statistics":
		// One row per (analyzed table, summarized column): the
		// distinct count and, for INT columns, the value bounds the
		// cost model interpolates ranges against. Ordered by table
		// name then column index for determinism.
		out := &Result{Columns: []string{"table_name", "column_name", "distinct_count", "have_min_max", "min_value", "max_value"}}
		for _, t := range e.Tables() {
			analyzed, _, _, cols := t.statsSnapshot()
			if !analyzed {
				continue
			}
			idxs := make([]int, 0, len(cols))
			for idx := range cols {
				idxs = append(idxs, idx)
			}
			sort.Ints(idxs)
			for _, idx := range idxs {
				cs := cols[idx]
				hav := int64(0)
				if cs.HaveMinMax {
					hav = 1
				}
				out.Rows = append(out.Rows, storage.Record{
					sqlparse.StrValue(t.Name),
					sqlparse.StrValue(t.Columns[idx].Name),
					sqlparse.IntValue(cs.Distinct),
					sqlparse.IntValue(hav),
					sqlparse.IntValue(cs.Min),
					sqlparse.IntValue(cs.Max),
				})
			}
		}
		return out, true
	case "performance_schema.events_statements_summary_by_digest":
		out := &Result{Columns: []string{"digest", "digest_text", "count_star", "sum_rows_examined", "sum_rows_sent", "first_seen", "last_seen"}}
		for _, row := range e.perf.DigestSummary() {
			out.Rows = append(out.Rows, storage.Record{
				sqlparse.StrValue(row.Digest),
				sqlparse.StrValue(row.DigestText),
				sqlparse.IntValue(int64(row.Count)),
				sqlparse.IntValue(int64(row.SumRowsExamined)),
				sqlparse.IntValue(int64(row.SumRowsReturned)),
				sqlparse.IntValue(row.FirstSeen),
				sqlparse.IntValue(row.LastSeen),
			})
		}
		return out, true
	}
	return nil, false
}

func statementEventRow(ev perfschema.StatementEvent) storage.Record {
	return storage.Record{
		sqlparse.IntValue(int64(ev.Thread)),
		sqlparse.IntValue(ev.Timestamp),
		sqlparse.StrValue(ev.Statement),
		sqlparse.StrValue(ev.Digest),
		sqlparse.IntValue(int64(ev.RowsExamined)),
		sqlparse.IntValue(int64(ev.RowsReturned)),
	}
}

// --- Accessors used by the snapshot and forensics packages. They
// expose the engine's internal state exactly as a compromise would. ---

// WAL returns the redo/undo log manager.
func (e *Engine) WAL() *wal.Manager { return e.wal }

// Binlog returns the binary log.
func (e *Engine) Binlog() *binlog.Log { return e.binlog }

// BufferPool returns the buffer pool.
func (e *Engine) BufferPool() *bufpool.Pool { return e.pool }

// Arena returns the simulated process heap.
func (e *Engine) Arena() *heap.Arena { return e.arena }

// QueryCache returns the internal query cache.
func (e *Engine) QueryCache() *querycache.Cache { return e.qcache }

// PerfSchema returns the performance_schema state.
func (e *Engine) PerfSchema() *perfschema.Schema { return e.perf }

// Processlist returns the information_schema processlist.
func (e *Engine) Processlist() *infoschema.Processlist { return e.procs }

// Tablespace returns the page store.
func (e *Engine) Tablespace() *storage.Tablespace { return e.ts }

// GeneralLog returns the general query log.
func (e *Engine) GeneralLog() *dblog.GeneralLog { return e.general }

// SlowLog returns the slow query log.
func (e *Engine) SlowLog() *dblog.SlowLog { return e.slow }

// TableByID resolves a WAL table id to its catalog entry.
func (e *Engine) TableByID(id uint8) (*Table, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tablesByID[id]
	return t, ok
}

// LastBufferPoolDump returns the most recent periodic buffer-pool dump
// file image (written every DumpInterval statements), or nil if none
// has been written yet.
func (e *Engine) LastBufferPoolDump() []byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.bufpoolDump == nil {
		return nil
	}
	out := make([]byte, len(e.bufpoolDump))
	copy(out, e.bufpoolDump)
	return out
}

// Shutdown flushes the buffer-pool dump the way MySQL does at shutdown
// and returns it.
func (e *Engine) Shutdown() []byte {
	dump := e.pool.DumpFile()
	e.mu.Lock()
	e.bufpoolDump = dump
	e.mu.Unlock()
	out := make([]byte, len(dump))
	copy(out, dump)
	return out
}

// Statements returns the number of executed statements.
func (e *Engine) Statements() uint64 { return e.statements.Load() }

// SetSlowThreshold adjusts the slow-log threshold at runtime.
func (e *Engine) SetSlowThreshold(d time.Duration) { e.slow.Threshold = d }
