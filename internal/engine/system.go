package engine

import (
	"sort"
	"time"

	"snapdb/internal/binlog"
	"snapdb/internal/bufpool"
	"snapdb/internal/dblog"
	"snapdb/internal/heap"
	"snapdb/internal/infoschema"
	"snapdb/internal/perfschema"
	"snapdb/internal/querycache"
	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
	"snapdb/internal/wal"
)

// systemSelect serves the virtual diagnostic tables that §4 of the
// paper shows are reachable through any SQL execution path, including
// an injected query: information_schema.processlist and the
// performance_schema statement tables. Returns (result, true) when the
// statement targeted a system table.
func (e *Engine) systemSelect(st *sqlparse.Select) (*Result, bool) {
	switch st.Table {
	case "information_schema.processlist":
		rows := e.procs.Snapshot()
		out := &Result{Columns: []string{"id", "user", "state", "started", "info"}}
		for _, p := range rows {
			out.Rows = append(out.Rows, storage.Record{
				sqlparse.IntValue(int64(p.ID)),
				sqlparse.StrValue(p.User),
				sqlparse.StrValue(p.State),
				sqlparse.IntValue(p.Started),
				sqlparse.StrValue(p.Statement),
			})
		}
		return out, true
	case "performance_schema.events_statements_current":
		out := &Result{Columns: []string{"thread", "timestamp", "sql_text", "digest", "rows_examined", "rows_sent"}}
		for _, ev := range e.perf.Current() {
			out.Rows = append(out.Rows, statementEventRow(ev))
		}
		return out, true
	case "performance_schema.events_statements_history":
		out := &Result{Columns: []string{"thread", "timestamp", "sql_text", "digest", "rows_examined", "rows_sent"}}
		for _, ev := range e.perf.History() {
			out.Rows = append(out.Rows, statementEventRow(ev))
		}
		return out, true
	case "performance_schema.events_stages_history":
		out := &Result{Columns: []string{"thread", "timestamp", "digest", "seq", "depth", "operator", "rows_examined", "rows_returned", "pool_fetches"}}
		for _, ev := range e.perf.StagesHistory() {
			out.Rows = append(out.Rows, storage.Record{
				sqlparse.IntValue(int64(ev.Thread)),
				sqlparse.IntValue(ev.Timestamp),
				sqlparse.StrValue(ev.Digest),
				sqlparse.IntValue(int64(ev.Seq)),
				sqlparse.IntValue(int64(ev.Depth)),
				sqlparse.StrValue(ev.Operator),
				sqlparse.IntValue(int64(ev.RowsExamined)),
				sqlparse.IntValue(int64(ev.RowsReturned)),
				sqlparse.IntValue(int64(ev.PoolFetches)),
			})
		}
		return out, true
	case "information_schema.table_statistics":
		// One row per analyzed table: when ANALYZE last ran, the row
		// count it saw (the drift baseline), and the live row hint.
		// Never-analyzed tables are omitted — they have no statistics
		// to show, which is itself the signal the planner acts on.
		out := &Result{Columns: []string{"table_name", "analyzed_at", "baseline_rows", "live_rows"}}
		for _, t := range e.Tables() {
			analyzed, at, baseline, _ := t.statsSnapshot()
			if !analyzed {
				continue
			}
			out.Rows = append(out.Rows, storage.Record{
				sqlparse.StrValue(t.Name),
				sqlparse.IntValue(at),
				sqlparse.IntValue(baseline),
				sqlparse.IntValue(t.rows.Load()),
			})
		}
		return out, true
	case "information_schema.index_statistics":
		// One row per (analyzed table, summarized column): the
		// distinct count and, for INT columns, the value bounds the
		// cost model interpolates ranges against. Ordered by table
		// name then column index for determinism.
		out := &Result{Columns: []string{"table_name", "column_name", "distinct_count", "have_min_max", "min_value", "max_value"}}
		for _, t := range e.Tables() {
			analyzed, _, _, cols := t.statsSnapshot()
			if !analyzed {
				continue
			}
			idxs := make([]int, 0, len(cols))
			for idx := range cols {
				idxs = append(idxs, idx)
			}
			sort.Ints(idxs)
			for _, idx := range idxs {
				cs := cols[idx]
				hav := int64(0)
				if cs.HaveMinMax {
					hav = 1
				}
				out.Rows = append(out.Rows, storage.Record{
					sqlparse.StrValue(t.Name),
					sqlparse.StrValue(t.Columns[idx].Name),
					sqlparse.IntValue(cs.Distinct),
					sqlparse.IntValue(hav),
					sqlparse.IntValue(cs.Min),
					sqlparse.IntValue(cs.Max),
				})
			}
		}
		return out, true
	case "information_schema.active_transactions":
		// One row per open explicit transaction: who holds it, its WAL
		// txn id, access mode, buffered undo/binlog sizes, and the
		// commit-sequence snapshot its read view pinned (-1 before the
		// first consistent read). §4's point applies: transaction state
		// is reachable through any SQL path.
		out := &Result{Columns: []string{"session", "txn", "read_only", "undo_records", "binlog_events", "view_snap"}}
		e.mu.Lock()
		txns := make([]*txnState, 0, len(e.activeTxns))
		for _, tx := range e.activeTxns {
			txns = append(txns, tx)
		}
		e.mu.Unlock()
		sort.Slice(txns, func(i, j int) bool { return txns[i].sessionID < txns[j].sessionID })
		for _, tx := range txns {
			ro, snap := int64(0), int64(-1)
			if tx.readOnly {
				ro = 1
			}
			tx.mu.Lock()
			if tx.view != nil {
				snap = int64(tx.view.snap)
			}
			nUndo, nEvs := len(tx.undo), len(tx.binlogBuf)
			tx.mu.Unlock()
			out.Rows = append(out.Rows, storage.Record{
				sqlparse.IntValue(int64(tx.sessionID)),
				sqlparse.IntValue(int64(tx.walTxn)),
				sqlparse.IntValue(ro),
				sqlparse.IntValue(int64(nUndo)),
				sqlparse.IntValue(int64(nEvs)),
				sqlparse.IntValue(snap),
			})
		}
		return out, true
	case "information_schema.mvcc_version_store":
		// One row per version chain — the purge-lag / residue surface:
		// deleted=1 chains still carrying versions are rows the
		// application removed that remain readable here.
		out := &Result{Columns: []string{"table_name", "pk", "latest_txn", "deleted", "versions"}}
		if e.versions == nil {
			return out, true
		}
		names := make(map[uint8]string)
		e.mu.Lock()
		for id, t := range e.tablesByID {
			names[id] = t.Name
		}
		e.mu.Unlock()
		type chainRow struct {
			table    string
			pk       sqlparse.Value
			latest   uint64
			deleted  bool
			versions int
		}
		var chains []chainRow
		st2 := e.versions
		st2.mu.Lock()
		for id, tv := range st2.tables {
			name := names[id]
			if name == "" {
				name = "(dropped)"
			}
			for k, c := range tv.chains {
				chains = append(chains, chainRow{name, k.value(), c.latestTxn, c.deleted, len(c.olds)})
			}
		}
		st2.mu.Unlock()
		sort.Slice(chains, func(i, j int) bool {
			if chains[i].table != chains[j].table {
				return chains[i].table < chains[j].table
			}
			return chains[i].pk.Compare(chains[j].pk) < 0
		})
		for _, c := range chains {
			del := int64(0)
			if c.deleted {
				del = 1
			}
			out.Rows = append(out.Rows, storage.Record{
				sqlparse.StrValue(c.table),
				sqlparse.StrValue(c.pk.String()),
				sqlparse.IntValue(int64(c.latest)),
				sqlparse.IntValue(del),
				sqlparse.IntValue(int64(c.versions)),
			})
		}
		return out, true
	case "information_schema.mvcc_status":
		// Store-wide counters: commit sequence, chain/version totals,
		// open views and the oldest snapshot pinning purge, and the
		// purge statistics (the purge-lag view).
		out := &Result{Columns: []string{"seq", "chains", "versions", "views", "oldest_view_snap", "commits_tracked", "purge_runs", "purged_versions"}}
		if e.versions == nil {
			return out, true
		}
		ms := e.versions.status()
		out.Rows = append(out.Rows, storage.Record{
			sqlparse.IntValue(int64(ms.seq)),
			sqlparse.IntValue(int64(ms.chains)),
			sqlparse.IntValue(int64(ms.versions)),
			sqlparse.IntValue(int64(ms.views)),
			sqlparse.IntValue(int64(ms.oldestViewSnap)),
			sqlparse.IntValue(int64(ms.commitsTracked)),
			sqlparse.IntValue(int64(ms.purgeRuns)),
			sqlparse.IntValue(int64(ms.purgedVersions)),
		})
		return out, true
	case "performance_schema.events_statements_summary_by_digest":
		out := &Result{Columns: []string{"digest", "digest_text", "count_star", "sum_rows_examined", "sum_rows_sent", "first_seen", "last_seen"}}
		for _, row := range e.perf.DigestSummary() {
			out.Rows = append(out.Rows, storage.Record{
				sqlparse.StrValue(row.Digest),
				sqlparse.StrValue(row.DigestText),
				sqlparse.IntValue(int64(row.Count)),
				sqlparse.IntValue(int64(row.SumRowsExamined)),
				sqlparse.IntValue(int64(row.SumRowsReturned)),
				sqlparse.IntValue(row.FirstSeen),
				sqlparse.IntValue(row.LastSeen),
			})
		}
		return out, true
	}
	return nil, false
}

func statementEventRow(ev perfschema.StatementEvent) storage.Record {
	return storage.Record{
		sqlparse.IntValue(int64(ev.Thread)),
		sqlparse.IntValue(ev.Timestamp),
		sqlparse.StrValue(ev.Statement),
		sqlparse.StrValue(ev.Digest),
		sqlparse.IntValue(int64(ev.RowsExamined)),
		sqlparse.IntValue(int64(ev.RowsReturned)),
	}
}

// --- Accessors used by the snapshot and forensics packages. They
// expose the engine's internal state exactly as a compromise would. ---

// WAL returns the redo/undo log manager.
func (e *Engine) WAL() *wal.Manager { return e.wal }

// Binlog returns the binary log.
func (e *Engine) Binlog() *binlog.Log { return e.binlog }

// BufferPool returns the buffer pool.
func (e *Engine) BufferPool() *bufpool.Pool { return e.pool }

// Arena returns the simulated process heap.
func (e *Engine) Arena() *heap.Arena { return e.arena }

// QueryCache returns the internal query cache.
func (e *Engine) QueryCache() *querycache.Cache { return e.qcache }

// PerfSchema returns the performance_schema state.
func (e *Engine) PerfSchema() *perfschema.Schema { return e.perf }

// Processlist returns the information_schema processlist.
func (e *Engine) Processlist() *infoschema.Processlist { return e.procs }

// Tablespace returns the page store.
func (e *Engine) Tablespace() *storage.Tablespace { return e.ts }

// GeneralLog returns the general query log.
func (e *Engine) GeneralLog() *dblog.GeneralLog { return e.general }

// SlowLog returns the slow query log.
func (e *Engine) SlowLog() *dblog.SlowLog { return e.slow }

// TableByID resolves a WAL table id to its catalog entry.
func (e *Engine) TableByID(id uint8) (*Table, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tablesByID[id]
	return t, ok
}

// LastBufferPoolDump returns the most recent periodic buffer-pool dump
// file image (written every DumpInterval statements), or nil if none
// has been written yet.
func (e *Engine) LastBufferPoolDump() []byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.bufpoolDump == nil {
		return nil
	}
	out := make([]byte, len(e.bufpoolDump))
	copy(out, e.bufpoolDump)
	return out
}

// Shutdown flushes the buffer-pool dump the way MySQL does at shutdown
// and returns it.
func (e *Engine) Shutdown() []byte {
	dump := e.pool.DumpFile()
	e.mu.Lock()
	e.bufpoolDump = dump
	e.mu.Unlock()
	out := make([]byte, len(dump))
	copy(out, dump)
	return out
}

// Statements returns the number of executed statements.
func (e *Engine) Statements() uint64 { return e.statements.Load() }

// SetSlowThreshold adjusts the slow-log threshold at runtime.
func (e *Engine) SetSlowThreshold(d time.Duration) { e.slow.Threshold = d }
