package engine

// Explicit-transaction edge cases: ROLLBACK's affected-row count, the
// WAL-before-binlog commit ordering (with a crash in the gap), COMMIT
// with buffered binlog events but no undo, rollback racing DROP TABLE,
// and interleaved transactions across sessions.

import (
	"strings"
	"testing"

	"snapdb/internal/binlog"
	"snapdb/internal/failpoint"
	"snapdb/internal/vfs"
	"snapdb/internal/wal"
)

// TestRollbackReportsZeroRowsAffected is the MySQL-compatibility
// regression: ROLLBACK used to report len(undo), which double-counts
// multi-column updates (one undo record per column).
func TestRollbackReportsZeroRowsAffected(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, a INT, b INT)")
	mustExec(t, s, "INSERT INTO t (id, a, b) VALUES (1, 1, 1)")
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "UPDATE t SET a = 2, b = 2 WHERE id = 1") // 2 undo records
	mustExec(t, s, "INSERT INTO t (id, a, b) VALUES (2, 0, 0)")
	res := mustExec(t, s, "ROLLBACK")
	if res.RowsAffected != 0 {
		t.Errorf("ROLLBACK RowsAffected = %d, want 0", res.RowsAffected)
	}
}

// TestCommitCrashBetweenWALAndBinlog arms a crash on the binlog append
// inside COMMIT — the exact gap the commit reordering closed. The WAL
// commit marker lands first, so the recovered data must contain the
// transaction while the binlog lacks its statements: recovered data
// may carry statements the binlog lacks, never the reverse.
func TestCommitCrashBetweenWALAndBinlog(t *testing.T) {
	stmts := []string{
		"CREATE TABLE t (id INT PRIMARY KEY, v TEXT)", // binlog write 1
		"BEGIN",
		"INSERT INTO t (id, v) VALUES (1, 'a')",
		"INSERT INTO t (id, v) VALUES (2, 'b')",
		"COMMIT", // WAL commit, then binlog writes 2..3 — crash on 2
	}
	mem := vfs.NewMemFS()
	reg := failpoint.New(1)
	reg.Arm("write:"+FileBinlog, failpoint.KindCrash, 2)
	acked := runUntilError(vfs.NewFaultFS(mem, reg), stmts)
	if !reg.Crashed() {
		t.Fatalf("kill point never fired (acked %d statements)", acked)
	}
	if acked != 4 { // COMMIT itself must be the statement that dies
		t.Fatalf("acked %d statements, want 4", acked)
	}
	mem.Crash()

	r, _, err := Recover(mem, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	s := r.Connect("app")
	res := mustExec(t, s, "SELECT v FROM t")
	if len(res.Rows) != 2 {
		t.Errorf("recovered rows = %v, want the committed transaction (WAL commit preceded the crash)", res.Rows)
	}
	for _, ev := range r.Binlog().Events() {
		if strings.Contains(ev.Statement, "INSERT") {
			t.Errorf("binlog carries a statement from the torn commit: %q", ev.Statement)
		}
	}
}

// TestCommitEmptyUndoFlushesBufferedBinlog pins the COMMIT branch
// where no undo exists (so no WAL commit marker is written) but
// binlog events are buffered: they must still flush, with the commit
// timestamp.
func TestCommitEmptyUndoFlushesBufferedBinlog(t *testing.T) {
	e, now := newEngine(t, Defaults())
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	walBefore := len(e.WAL().Redo.Records())
	binlogBefore := e.Binlog().Len()

	mustExec(t, s, "BEGIN")
	// No DML ran, but an event sits in the transaction's binlog cache
	// (statement classes that binlog without undo records).
	s.txn.binlogBuf = append(s.txn.binlogBuf, binlog.Event{Statement: "SYNTHETIC"})
	*now = 2_000_000
	mustExec(t, s, "COMMIT")

	evs := e.Binlog().Events()
	if len(evs) != binlogBefore+1 {
		t.Fatalf("binlog events = %d, want %d", len(evs), binlogBefore+1)
	}
	last := evs[len(evs)-1]
	if last.Statement != "SYNTHETIC" || last.Timestamp != 2_000_000 {
		t.Errorf("flushed event = %+v", last)
	}
	// An undo-less transaction writes no commit marker.
	for _, rec := range e.WAL().Redo.Records()[walBefore:] {
		if rec.Op == wal.OpCommit {
			t.Errorf("empty transaction wrote a WAL commit marker")
		}
	}
}

// TestRollbackAfterDropTable: a transaction's undo can reference a
// table another session drops mid-flight (in-memory engines allow the
// DDL through). The rollback must fail loudly, not resurrect rows
// into a vanished catalog entry.
func TestRollbackAfterDropTable(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	a := e.Connect("txn")
	b := e.Connect("ddl")
	mustExec(t, a, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	mustExec(t, a, "INSERT INTO t (id, v) VALUES (1, 'x')")
	mustExec(t, a, "BEGIN")
	mustExec(t, a, "UPDATE t SET v = 'y' WHERE id = 1")
	mustExec(t, b, "DROP TABLE t")
	_, err := a.Execute("ROLLBACK")
	if err == nil || !strings.Contains(err.Error(), "unknown table") {
		t.Errorf("ROLLBACK after DROP: err = %v, want unknown-table failure", err)
	}
	// The transaction is closed either way; the session keeps working.
	if a.InTransaction() {
		t.Error("session stuck in transaction after failed rollback")
	}
	mustExec(t, a, "CREATE TABLE u (id INT PRIMARY KEY)")
}

// TestTxnInterleavedAcrossSessions: two transactions on the same
// table, one committing and one rolling back, interleaved — each
// resolves independently.
func TestTxnInterleavedAcrossSessions(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	a := e.Connect("a")
	b := e.Connect("b")
	mustExec(t, a, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	mustExec(t, a, "INSERT INTO t (id, v) VALUES (1, 10)")
	mustExec(t, a, "INSERT INTO t (id, v) VALUES (2, 20)")

	mustExec(t, a, "BEGIN")
	mustExec(t, b, "BEGIN")
	mustExec(t, a, "UPDATE t SET v = 11 WHERE id = 1")
	mustExec(t, b, "UPDATE t SET v = 22 WHERE id = 2")
	mustExec(t, a, "ROLLBACK")
	mustExec(t, b, "COMMIT")

	res := mustExec(t, a, "SELECT v FROM t WHERE id = 1")
	if res.Rows[0][0].Int != 10 {
		t.Errorf("rolled-back row = %v, want 10", res.Rows)
	}
	res = mustExec(t, a, "SELECT v FROM t WHERE id = 2")
	if res.Rows[0][0].Int != 22 {
		t.Errorf("committed row = %v, want 22", res.Rows)
	}
}
