package engine

import (
	"strings"
	"testing"

	"snapdb/internal/vfs"
	"snapdb/internal/wal"
)

// durableEngine starts a fresh engine persisting into fs.
func durableEngine(t testing.TB, fs vfs.FS) *Engine {
	t.Helper()
	cfg := Defaults()
	cfg.FS = fs
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := int64(1_000_000)
	e.Clock = func() int64 { return now }
	return e
}

func seedDurable(t testing.TB, fs vfs.FS) *Engine {
	t.Helper()
	e := durableEngine(t, fs)
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE accounts (id INT PRIMARY KEY, owner TEXT, balance INT)")
	mustExec(t, s, "INSERT INTO accounts (id, owner, balance) VALUES (1, 'alice', 100)")
	mustExec(t, s, "INSERT INTO accounts (id, owner, balance) VALUES (2, 'bob', 250)")
	mustExec(t, s, "UPDATE accounts SET balance = 175 WHERE id = 2")
	return e
}

func digestOf(t testing.TB, e *Engine) string {
	t.Helper()
	d, err := e.StateDigest()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRecoverCleanShutdown(t *testing.T) {
	mem := vfs.NewMemFS()
	e := seedDurable(t, mem)
	want := digestOf(t, e)
	mem.Crash() // everything above was synced; nothing should be lost

	r, rep, err := Recover(mem, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if got := digestOf(t, r); got != want {
		t.Errorf("recovered digest differs from pre-crash digest")
	}
	if !rep.CheckpointFound {
		t.Error("DDL checkpoint not found")
	}
	if rep.Tables != 1 {
		t.Errorf("Tables = %d, want 1", rep.Tables)
	}
	if rep.RedoTruncated != nil || rep.UndoTruncated != nil || rep.BinlogTruncated != nil {
		t.Errorf("clean files reported truncated: %+v", rep)
	}
	if rep.TxnsRolledBack != 0 {
		t.Errorf("clean shutdown rolled back %d txns", rep.TxnsRolledBack)
	}
	if rep.RedoRecords == 0 || rep.RecordsApplied == 0 {
		t.Errorf("nothing replayed: %+v", rep)
	}
	// The recovered engine keeps serving writes.
	s := r.Connect("app")
	mustExec(t, s, "INSERT INTO accounts (id, owner, balance) VALUES (3, 'carol', 50)")
	res := mustExec(t, s, "SELECT owner FROM accounts WHERE id = 3")
	if len(res.Rows) != 1 {
		t.Error("post-recovery insert not visible")
	}
}

func TestRecoverEmptyDirectory(t *testing.T) {
	mem := vfs.NewMemFS()
	r, rep, err := Recover(mem, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if rep.CheckpointFound || rep.RedoRecords != 0 {
		t.Errorf("empty dir report: %+v", rep)
	}
	s := r.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	mustExec(t, s, "INSERT INTO t (id, v) VALUES (1, 'x')")
}

func TestRecoverRollsBackOpenTxn(t *testing.T) {
	mem := vfs.NewMemFS()
	e := seedDurable(t, mem)
	want := digestOf(t, e)

	s := e.Connect("app")
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO accounts (id, owner, balance) VALUES (9, 'mallory', 1)")
	mustExec(t, s, "UPDATE accounts SET balance = 0 WHERE id = 1")
	// No COMMIT: the crash interrupts the transaction.
	mem.Crash()

	r, rep, err := Recover(mem, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TxnsRolledBack != 1 {
		t.Errorf("TxnsRolledBack = %d, want 1", rep.TxnsRolledBack)
	}
	if got := digestOf(t, r); got != want {
		t.Error("recovered digest includes uncommitted changes")
	}
	// Convergence: the rollback logged compensations and an abort
	// marker, so a second crash-recover finds no losers.
	mem.Crash()
	r2, rep2, err := Recover(mem, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.TxnsRolledBack != 0 {
		t.Errorf("second recovery rolled back %d txns, want 0", rep2.TxnsRolledBack)
	}
	if got := digestOf(t, r2); got != want {
		t.Error("second recovery diverged")
	}
}

func TestRecoverCommittedTxnKept(t *testing.T) {
	mem := vfs.NewMemFS()
	e := seedDurable(t, mem)
	s := e.Connect("app")
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO accounts (id, owner, balance) VALUES (7, 'grace', 10)")
	mustExec(t, s, "COMMIT")
	want := digestOf(t, e)
	mem.Crash()

	r, rep, err := Recover(mem, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TxnsCommitted == 0 {
		t.Error("commit marker not counted")
	}
	if got := digestOf(t, r); got != want {
		t.Error("committed transaction lost")
	}
}

func TestRecoverTornRedoTail(t *testing.T) {
	mem := vfs.NewMemFS()
	e := seedDurable(t, mem)
	before := digestOf(t, e)
	s := e.Connect("app")
	mustExec(t, s, "INSERT INTO accounts (id, owner, balance) VALUES (4, 'dave', 60)")
	mem.Crash()

	// Tear the last few bytes off the redo file: the final
	// insert+commit frames become unparseable.
	img, err := mem.ReadFile(FileRedo)
	if err != nil {
		t.Fatal(err)
	}
	tearFile(t, mem, FileRedo, img[:len(img)-3])

	r, rep, err := Recover(mem, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if rep.RedoTruncated == nil {
		t.Fatal("torn tail not reported")
	}
	if rep.RedoTruncated.Reason != "torn frame" {
		t.Errorf("Reason = %q, want torn frame", rep.RedoTruncated.Reason)
	}
	got := digestOf(t, r)
	if got != before {
		// The torn tail held both the insert and its commit marker; with
		// the marker gone the insert must not survive. (If only part of
		// the marker tore, the insert is a loser and is rolled back —
		// either way the digest is the pre-insert one.)
		t.Error("recovered digest includes the torn-off insert")
	}
	// The truncated tail is gone from disk too: a second recovery sees a
	// clean file.
	mem.Crash()
	_, rep2, err := Recover(mem, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.RedoTruncated != nil {
		t.Error("tail not truncated off the file by the first recovery")
	}
}

func TestRecoverBitFlipRedo(t *testing.T) {
	mem := vfs.NewMemFS()
	e := seedDurable(t, mem)
	s := e.Connect("app")
	mustExec(t, s, "INSERT INTO accounts (id, owner, balance) VALUES (5, 'erin', 70)")
	mem.Crash()

	img, err := mem.ReadFile(FileRedo)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), img...)
	bad[len(bad)/2] ^= 0x10
	tearFile(t, mem, FileRedo, bad)

	r, rep, err := Recover(mem, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if rep.RedoTruncated == nil {
		t.Fatal("corruption not reported")
	}
	if !strings.Contains(rep.RedoTruncated.Reason, "checksum") {
		t.Errorf("Reason = %q, want checksum mismatch", rep.RedoTruncated.Reason)
	}
	// The engine recovered the valid prefix and still serves.
	sess := r.Connect("app")
	mustExec(t, sess, "SELECT owner FROM accounts WHERE id = 1")
}

func TestRecoverCorruptCheckpointIsCleanError(t *testing.T) {
	mem := vfs.NewMemFS()
	seedDurable(t, mem)
	mem.Crash()

	img, err := mem.ReadFile(FileCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), img...)
	bad[len(bad)/3] ^= 0x04
	tearFile(t, mem, FileCheckpoint, bad)

	_, _, err = Recover(mem, Defaults())
	if err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}

func TestRecoverDDLWithOpenTxnRefused(t *testing.T) {
	mem := vfs.NewMemFS()
	e := seedDurable(t, mem)
	s1 := e.Connect("a")
	s2 := e.Connect("b")
	mustExec(t, s1, "BEGIN")
	mustExec(t, s1, "INSERT INTO accounts (id, owner, balance) VALUES (8, 'x', 1)")
	if _, err := s2.Execute("CREATE TABLE other (id INT PRIMARY KEY, v TEXT)"); err == nil {
		t.Error("DDL accepted while a transaction is open on a durable engine")
	}
	mustExec(t, s1, "COMMIT")
	mustExec(t, s2, "CREATE TABLE other (id INT PRIMARY KEY, v TEXT)")
}

func TestRecoverSecondaryIndexes(t *testing.T) {
	mem := vfs.NewMemFS()
	e := seedDurable(t, mem)
	s := e.Connect("app")
	mustExec(t, s, "CREATE INDEX idx_balance ON accounts (balance)")
	mustExec(t, s, "INSERT INTO accounts (id, owner, balance) VALUES (6, 'frank', 300)")
	wantRows := mustExec(t, s, "SELECT owner FROM accounts WHERE balance >= 100 AND balance <= 400")
	want := digestOf(t, e)
	mem.Crash()

	r, _, err := Recover(mem, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if got := digestOf(t, r); got != want {
		t.Error("recovered digest differs with secondary index")
	}
	sess := r.Connect("app")
	gotRows := mustExec(t, sess, "SELECT owner FROM accounts WHERE balance >= 100 AND balance <= 400")
	if len(gotRows.Rows) != len(wantRows.Rows) {
		t.Errorf("index range scan: %d rows, want %d", len(gotRows.Rows), len(wantRows.Rows))
	}
}

// TestRecoverReportForensicSurface asserts what E13 measures: the redo
// tail of a crashed directory still carries the uncommitted
// transaction's row images, and the recovery report inventories them.
func TestRecoverReportForensicSurface(t *testing.T) {
	mem := vfs.NewMemFS()
	e := seedDurable(t, mem)
	s := e.Connect("app")
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO accounts (id, owner, balance) VALUES (66, 'secret-payee', 999)")
	mem.Crash()

	img, err := mem.ReadFile(FileRedo)
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := wal.ParseLogReport(img)
	found := false
	for _, r := range recs {
		for _, v := range r.Image {
			if v.Str == "secret-payee" {
				found = true
			}
		}
	}
	if !found {
		t.Error("uncommitted row image missing from the persisted redo log")
	}
}

// tearFile replaces name's content in fs with data, bypassing the
// engine — the test's stand-in for disk damage.
func tearFile(t testing.TB, fs vfs.FS, name string, data []byte) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(); err != nil {
		t.Fatal(err)
	}
}
