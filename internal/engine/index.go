package engine

import (
	"fmt"
	"sort"

	"snapdb/internal/binlog"
	"snapdb/internal/btree"
	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
)

// SecondaryIndex is a non-unique index over one column: a B+ tree of
// {compositeKey, pk} entries whose composite key preserves (value, pk)
// order. Like the clustered index, every traversal flows through the
// buffer pool — so secondary-index access paths are part of the
// snapshot leakage surface too.
type SecondaryIndex struct {
	Name   string
	Column string
	colIdx int
	Tree   *btree.Tree
}

const hexDigits = "0123456789abcdef"

// encodeOrdered renders a value as a string whose bytewise order equals
// the value order within its type: ints as offset-binary fixed-width
// hex, strings as themselves. Columns are typed, so int and string
// encodings never mix within one index.
//
// The int form is written by hand instead of fmt.Sprintf("i%016x", u):
// every secondary-index probe and maintenance op builds these keys, and
// Sprintf's interface boxing plus format parsing was a measurable share
// of DML allocations. The output bytes are identical (asserted by
// TestEncodeOrderedMatchesSprintf).
func encodeOrdered(v sqlparse.Value) string {
	if v.IsInt {
		var b [17]byte
		b[0] = 'i'
		u := uint64(v.Int) + (1 << 63)
		for i := 16; i >= 1; i-- {
			b[i] = hexDigits[u&0xf]
			u >>= 4
		}
		return string(b[:])
	}
	return "s" + v.Str
}

// indexKey builds the composite (value, pk) key. The \x00 separator
// keeps entries of one value contiguous and ordered by pk.
func indexKey(v, pk sqlparse.Value) sqlparse.Value {
	return sqlparse.StrValue(encodeOrdered(v) + "\x00" + encodeOrdered(pk))
}

// indexValueBounds returns the inclusive composite-key range covering
// every pk for values in [lo, hi].
func indexValueBounds(lo, hi sqlparse.Value) (sqlparse.Value, sqlparse.Value) {
	return sqlparse.StrValue(encodeOrdered(lo) + "\x00"),
		sqlparse.StrValue(encodeOrdered(hi) + "\x00\xff")
}

func (e *Engine) execCreateIndex(s *Session, st *sqlparse.CreateIndex, query string, ts int64) (*Result, error) {
	if s.txn != nil {
		return nil, fmt.Errorf("engine: DDL inside a transaction is not supported")
	}
	if e.persist != nil {
		if n := e.openTxns.Load(); n != 0 {
			return nil, fmt.Errorf("engine: DDL refused: %d open transaction(s)", n)
		}
	}
	t, err := e.lookupTable(st.Table)
	if err != nil {
		return nil, err
	}
	colIdx := t.ColumnIndex(st.Column)
	if colIdx < 0 {
		return nil, fmt.Errorf("engine: unknown column %q in CREATE INDEX", st.Column)
	}
	if colIdx == t.PKIndex {
		return nil, fmt.Errorf("engine: column %q is the primary key; it is already indexed", st.Column)
	}
	e.mu.Lock()
	for _, ix := range t.Indexes {
		if ix.Name == st.Name {
			e.mu.Unlock()
			return nil, fmt.Errorf("engine: index %q already exists", st.Name)
		}
		if ix.Column == st.Column {
			e.mu.Unlock()
			return nil, fmt.Errorf("engine: column %q is already indexed by %q", st.Column, ix.Column)
		}
	}
	ix := &SecondaryIndex{
		Name:   st.Name,
		Column: st.Column,
		colIdx: colIdx,
		Tree:   btree.New(e.ts, e.pool),
	}
	e.mu.Unlock()

	// Backfill from the clustered index.
	err = t.Tree.Scan(func(r storage.Record) bool {
		entry := storage.Record{indexKey(r[colIdx], r[t.PKIndex]), r[t.PKIndex]}
		if insErr := ix.Tree.Insert(entry); insErr != nil {
			err = insErr
			return false
		}
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("engine: backfilling index %q: %w", st.Name, err)
	}
	e.mu.Lock()
	t.Indexes = append(t.Indexes, ix)
	sort.Slice(t.Indexes, func(i, j int) bool { return t.Indexes[i].Name < t.Indexes[j].Name })
	e.mu.Unlock()
	// DDL invalidates cached plans: a SELECT planned before this index
	// existed would keep full-scanning past it.
	if e.plans != nil {
		e.plans.bumpEpoch()
	}
	if e.cfg.EnableBinlog {
		if err := e.binlog.Commit(binlog.Event{Timestamp: ts, Statement: query}); err != nil {
			return nil, fmt.Errorf("engine: binlog: %w", err)
		}
	}
	// Like CREATE TABLE: the catalog (and the backfilled index tree) is
	// not WAL-logged, so a durable engine persists it by checkpointing.
	if err := e.checkpointLocked(); err != nil {
		return nil, fmt.Errorf("engine: DDL checkpoint: %w", err)
	}
	return &Result{}, nil
}

// indexInsertRow adds row to every secondary index of t.
func indexInsertRow(t *Table, row storage.Record) error {
	for _, ix := range t.Indexes {
		entry := storage.Record{indexKey(row[ix.colIdx], row[t.PKIndex]), row[t.PKIndex]}
		if err := ix.Tree.Insert(entry); err != nil {
			return fmt.Errorf("engine: index %q: %w", ix.Name, err)
		}
	}
	return nil
}

// indexDeleteRow removes row from every secondary index of t.
func indexDeleteRow(t *Table, row storage.Record) error {
	for _, ix := range t.Indexes {
		found, err := ix.Tree.Delete(indexKey(row[ix.colIdx], row[t.PKIndex]))
		if err != nil {
			return fmt.Errorf("engine: index %q: %w", ix.Name, err)
		}
		if !found {
			return fmt.Errorf("engine: index %q lost entry for pk %s", ix.Name, row[t.PKIndex])
		}
	}
	return nil
}

// indexUpdateColumn re-keys the indexes covering column col.
func indexUpdateColumn(t *Table, pk sqlparse.Value, col int, oldVal, newVal sqlparse.Value) error {
	if oldVal.Equal(newVal) {
		return nil
	}
	for _, ix := range t.Indexes {
		if ix.colIdx != col {
			continue
		}
		found, err := ix.Tree.Delete(indexKey(oldVal, pk))
		if err != nil {
			return fmt.Errorf("engine: index %q: %w", ix.Name, err)
		}
		if !found {
			return fmt.Errorf("engine: index %q lost entry for pk %s", ix.Name, pk)
		}
		if err := ix.Tree.Insert(storage.Record{indexKey(newVal, pk), pk}); err != nil {
			return fmt.Errorf("engine: index %q: %w", ix.Name, err)
		}
	}
	return nil
}

// indexBoundsFor extracts the predicate bounds usable with one index:
// an equality (eq=true, lo==hi) or both range bounds on its column.
// The first equality predicate wins outright, as it always has.
func indexBoundsFor(ix *SecondaryIndex, where sqlparse.Where) (lo, hi sqlparse.Value, eq, ok bool) {
	var haveLo, haveHi bool
	for _, p := range where {
		if p.Column != ix.Column {
			continue
		}
		switch p.Op {
		case sqlparse.OpEq:
			return p.Arg, p.Arg, true, true
		case sqlparse.OpGe, sqlparse.OpGt:
			if !haveLo || p.Arg.Compare(lo) > 0 {
				lo, haveLo = p.Arg, true
			}
		case sqlparse.OpLe, sqlparse.OpLt:
			if !haveHi || p.Arg.Compare(hi) < 0 {
				hi, haveHi = p.Arg, true
			}
		}
	}
	if haveLo && haveHi {
		return lo, hi, false, true
	}
	return sqlparse.Value{}, sqlparse.Value{}, false, false
}

// indexBounds looks for a usable secondary index the pre-statistics
// way: the first index (by name) with a bounded predicate wins. The
// cost-based planner enumerates candidates itself (physical.go); this
// remains as the DisableCostBasedPlanner control arm. The planner
// passes a race-free snapshot of the table's index list (see
// Engine.indexesOf).
func indexBounds(indexes []*SecondaryIndex, where sqlparse.Where) (*SecondaryIndex, sqlparse.Value, sqlparse.Value, bool) {
	for _, ix := range indexes {
		if lo, hi, _, ok := indexBoundsFor(ix, where); ok {
			return ix, lo, hi, true
		}
	}
	return nil, sqlparse.Value{}, sqlparse.Value{}, false
}
