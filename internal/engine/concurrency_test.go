package engine

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentSessions drives parallel sessions through the engine
// (run with -race): the statement lock must serialize tree mutations
// while artifact recording stays consistent.
func TestConcurrentSessions(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	setup := e.Connect("setup")
	mustExec(t, setup, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")

	const workers, perWorker = 6, 40
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := e.Connect(fmt.Sprintf("worker%d", w))
			defer s.Close()
			for i := 0; i < perWorker; i++ {
				id := w*perWorker + i
				if _, err := s.Execute(fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, %d)", id, id)); err != nil {
					errs <- err
					return
				}
				if _, err := s.Execute(fmt.Sprintf("SELECT v FROM t WHERE id = %d", id)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	res := mustExec(t, setup, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].Int != workers*perWorker {
		t.Errorf("count = %d, want %d", res.Rows[0][0].Int, workers*perWorker)
	}
	// Every write made it into the WAL and binlog exactly once.
	if got := len(e.WAL().Redo.Records()); got != workers*perWorker {
		t.Errorf("WAL records = %d, want %d", got, workers*perWorker)
	}
	if got := e.Binlog().Len(); got != workers*perWorker+1 { // +1 CREATE
		t.Errorf("binlog events = %d, want %d", got, workers*perWorker+1)
	}
}

// TestConcurrentTransactions interleaves committing and rolling-back
// transactions across sessions.
func TestConcurrentTransactions(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	setup := e.Connect("setup")
	mustExec(t, setup, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")

	const workers = 5
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := e.Connect(fmt.Sprintf("txn%d", w))
			defer s.Close()
			for i := 0; i < 10; i++ {
				id := w*1000 + i
				commit := i%2 == 0
				steps := []string{
					"BEGIN",
					fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, %d)", id, id),
				}
				if commit {
					steps = append(steps, "COMMIT")
				} else {
					steps = append(steps, "ROLLBACK")
				}
				for _, q := range steps {
					if _, err := s.Execute(q); err != nil {
						errs <- fmt.Errorf("worker %d: %s: %w", w, q, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	res := mustExec(t, setup, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].Int != workers*5 { // half of 10 per worker committed
		t.Errorf("count = %d, want %d", res.Rows[0][0].Int, workers*5)
	}
}
