package engine

import (
	"fmt"
	"sync"
	"testing"

	"snapdb/internal/wal"
)

// dataRecords filters commit/abort markers out of a WAL record slice,
// leaving only row-change records.
func dataRecords(recs []wal.Record) []wal.Record {
	out := recs[:0:0]
	for _, r := range recs {
		if !r.Op.IsMarker() {
			out = append(out, r)
		}
	}
	return out
}

// TestConcurrentMixedMultiTable drives concurrent sessions issuing a
// mixed SELECT/INSERT stream over two tables — the workload the striped
// lock manager parallelizes — and then checks the two invariants the
// forensic attacks need: (a) every table holds exactly its own rows,
// and (b) the WAL and binlog are ordered: WAL LSNs strictly increase,
// and binlog (timestamp, LSN) pairs are non-decreasing in log order
// (the E3 correlation invariant; ties are legal because several
// statements can commit within one clock second).
func TestConcurrentMixedMultiTable(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	setup := e.Connect("setup")
	mustExec(t, setup, "CREATE TABLE orders (id INT PRIMARY KEY, v INT)")
	mustExec(t, setup, "CREATE TABLE events (id INT PRIMARY KEY, v INT)")

	const workers, perWorker = 8, 30
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := e.Connect(fmt.Sprintf("mixed%d", w))
			defer s.Close()
			table := "orders"
			if w%2 == 1 {
				table = "events"
			}
			for i := 0; i < perWorker; i++ {
				id := w*perWorker + i
				if _, err := s.Execute(fmt.Sprintf("INSERT INTO %s (id, v) VALUES (%d, %d)", table, id, id)); err != nil {
					errs <- err
					return
				}
				// Cross-table read: half the reads hit the other table.
				readFrom := table
				if i%2 == 0 {
					if readFrom = "orders"; table == "orders" {
						readFrom = "events"
					}
				}
				res, err := s.Execute(fmt.Sprintf("SELECT v FROM %s WHERE id <= %d AND id >= %d", readFrom, id, id))
				if err != nil {
					errs <- err
					return
				}
				// A read of our own table must see our own insert.
				if readFrom == table && (len(res.Rows) != 1 || res.Rows[0][0].Int != int64(id)) {
					errs <- fmt.Errorf("worker %d: SELECT id=%d from %s returned %v", w, id, readFrom, res.Rows)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// (a) Correct results: each table holds exactly the rows its
	// writers inserted.
	const perTable = (workers / 2) * perWorker
	for _, table := range []string{"orders", "events"} {
		res := mustExec(t, setup, "SELECT COUNT(*) FROM "+table)
		if res.Rows[0][0].Int != perTable {
			t.Errorf("%s count = %d, want %d", table, res.Rows[0][0].Int, perTable)
		}
	}

	// (b) WAL order: strictly increasing LSNs in both logs.
	redo := e.WAL().Redo.Records()
	if got := len(dataRecords(redo)); got != workers*perWorker {
		t.Fatalf("redo data records = %d, want %d", got, workers*perWorker)
	}
	undo := e.WAL().Undo.Records()
	for i := 1; i < len(redo); i++ {
		if redo[i].LSN <= redo[i-1].LSN {
			t.Fatalf("redo LSN order violated at %d: %d after %d", i, redo[i].LSN, redo[i-1].LSN)
		}
	}
	for i := 1; i < len(undo); i++ {
		if undo[i].LSN <= undo[i-1].LSN {
			t.Fatalf("undo LSN order violated at %d: %d after %d", i, undo[i].LSN, undo[i-1].LSN)
		}
	}

	// (b) Binlog order: timestamps and LSNs non-decreasing, and every
	// event's LSN within the range the WAL actually reached.
	evs := e.Binlog().Events()
	if len(evs) != workers*perWorker+2 { // +2 CREATEs
		t.Fatalf("binlog events = %d, want %d", len(evs), workers*perWorker+2)
	}
	maxLSN := e.WAL().CurrentLSN()
	for i, ev := range evs {
		if ev.LSN > maxLSN {
			t.Fatalf("binlog event %d LSN %d beyond engine LSN %d", i, ev.LSN, maxLSN)
		}
		if i == 0 {
			continue
		}
		if ev.Timestamp < evs[i-1].Timestamp {
			t.Fatalf("binlog timestamp order violated at %d: %d after %d", i, ev.Timestamp, evs[i-1].Timestamp)
		}
		if ev.LSN < evs[i-1].LSN {
			t.Fatalf("binlog LSN order violated at %d: %d after %d", i, ev.LSN, evs[i-1].LSN)
		}
	}
}

// TestConcurrentSessions drives parallel sessions through the engine
// (run with -race): the statement lock must serialize tree mutations
// while artifact recording stays consistent.
func TestConcurrentSessions(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	setup := e.Connect("setup")
	mustExec(t, setup, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")

	const workers, perWorker = 6, 40
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := e.Connect(fmt.Sprintf("worker%d", w))
			defer s.Close()
			for i := 0; i < perWorker; i++ {
				id := w*perWorker + i
				if _, err := s.Execute(fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, %d)", id, id)); err != nil {
					errs <- err
					return
				}
				if _, err := s.Execute(fmt.Sprintf("SELECT v FROM t WHERE id = %d", id)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	res := mustExec(t, setup, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].Int != workers*perWorker {
		t.Errorf("count = %d, want %d", res.Rows[0][0].Int, workers*perWorker)
	}
	// Every write made it into the WAL and binlog exactly once.
	if got := len(dataRecords(e.WAL().Redo.Records())); got != workers*perWorker {
		t.Errorf("WAL data records = %d, want %d", got, workers*perWorker)
	}
	if got := e.Binlog().Len(); got != workers*perWorker+1 { // +1 CREATE
		t.Errorf("binlog events = %d, want %d", got, workers*perWorker+1)
	}
}

// TestConcurrentTransactions interleaves committing and rolling-back
// transactions across sessions.
func TestConcurrentTransactions(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	setup := e.Connect("setup")
	mustExec(t, setup, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")

	const workers = 5
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := e.Connect(fmt.Sprintf("txn%d", w))
			defer s.Close()
			for i := 0; i < 10; i++ {
				id := w*1000 + i
				commit := i%2 == 0
				steps := []string{
					"BEGIN",
					fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, %d)", id, id),
				}
				if commit {
					steps = append(steps, "COMMIT")
				} else {
					steps = append(steps, "ROLLBACK")
				}
				for _, q := range steps {
					if _, err := s.Execute(q); err != nil {
						errs <- fmt.Errorf("worker %d: %s: %w", w, q, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	res := mustExec(t, setup, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].Int != workers*5 { // half of 10 per worker committed
		t.Errorf("count = %d, want %d", res.Rows[0][0].Int, workers*5)
	}
}
