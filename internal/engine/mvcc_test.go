package engine

// MVCC snapshot-isolation tests: visibility semantics across sessions,
// the no-blocking property (SELECT takes no table stripe), purge
// behavior under pinned read views, and version chains surviving
// checkpoint + recovery — the §4 residue channel E16 quantifies.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"snapdb/internal/vfs"
)

func TestMVCCReaderSeesPreImageDuringOpenTxn(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	a := e.Connect("writer")
	b := e.Connect("reader")
	mustExec(t, a, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	mustExec(t, a, "INSERT INTO t (id, v) VALUES (1, 'before')")

	mustExec(t, a, "BEGIN")
	mustExec(t, a, "UPDATE t SET v = 'after' WHERE id = 1")

	// The writer sees its own uncommitted write...
	res := mustExec(t, a, "SELECT v FROM t WHERE id = 1")
	if res.Rows[0][0].Str != "after" {
		t.Errorf("writer's own read = %v, want 'after'", res.Rows)
	}
	// ...while a concurrent reader still sees the pre-image, on both
	// the point-lookup and full-scan paths.
	for _, q := range []string{
		"SELECT v FROM t WHERE id = 1",
		"SELECT v FROM t",
	} {
		res = mustExec(t, b, q)
		if len(res.Rows) != 1 || res.Rows[0][0].Str != "before" {
			t.Errorf("%s during open txn = %v, want 'before'", q, res.Rows)
		}
	}

	mustExec(t, a, "COMMIT")
	res = mustExec(t, b, "SELECT v FROM t WHERE id = 1")
	if res.Rows[0][0].Str != "after" {
		t.Errorf("post-commit read = %v, want 'after'", res.Rows)
	}
}

func TestMVCCRepeatableRead(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	a := e.Connect("writer")
	b := e.Connect("reader")
	mustExec(t, a, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	mustExec(t, a, "INSERT INTO t (id, v) VALUES (1, 10)")

	mustExec(t, b, "BEGIN")
	res := mustExec(t, b, "SELECT v FROM t WHERE id = 1") // pins the view
	if res.Rows[0][0].Int != 10 {
		t.Fatalf("first read = %v", res.Rows)
	}
	mustExec(t, a, "UPDATE t SET v = 20 WHERE id = 1") // autocommit, committed

	// The transaction's view was pinned before the update committed:
	// every subsequent read repeats the first.
	res = mustExec(t, b, "SELECT v FROM t WHERE id = 1")
	if res.Rows[0][0].Int != 10 {
		t.Errorf("repeatable read = %v, want 10", res.Rows)
	}
	mustExec(t, b, "COMMIT")
	res = mustExec(t, b, "SELECT v FROM t WHERE id = 1")
	if res.Rows[0][0].Int != 20 {
		t.Errorf("post-txn read = %v, want 20", res.Rows)
	}
}

func TestMVCCUncommittedInsertInvisible(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	a := e.Connect("writer")
	b := e.Connect("reader")
	mustExec(t, a, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	mustExec(t, a, "INSERT INTO t (id, v) VALUES (1, 'seed')")

	mustExec(t, a, "BEGIN")
	mustExec(t, a, "INSERT INTO t (id, v) VALUES (2, 'phantom')")

	for _, q := range []string{
		"SELECT v FROM t WHERE id = 2",
		"SELECT v FROM t",
		"SELECT COUNT(*) FROM t",
	} {
		res := mustExec(t, b, q)
		switch q {
		case "SELECT COUNT(*) FROM t":
			if res.Rows[0][0].Int != 1 {
				t.Errorf("%s = %v, want 1", q, res.Rows)
			}
		case "SELECT v FROM t":
			if len(res.Rows) != 1 {
				t.Errorf("%s = %v, want only the seed row", q, res.Rows)
			}
		default:
			if len(res.Rows) != 0 {
				t.Errorf("%s = %v, want no rows", q, res.Rows)
			}
		}
	}
	mustExec(t, a, "COMMIT")
	res := mustExec(t, b, "SELECT v FROM t WHERE id = 2")
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "phantom" {
		t.Errorf("post-commit read = %v", res.Rows)
	}
}

func TestMVCCUncommittedDeleteStillVisible(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	a := e.Connect("writer")
	b := e.Connect("reader")
	mustExec(t, a, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	mustExec(t, a, "INSERT INTO t (id, v) VALUES (1, 'alive')")
	mustExec(t, a, "INSERT INTO t (id, v) VALUES (2, 'doomed')")

	mustExec(t, a, "BEGIN")
	mustExec(t, a, "DELETE FROM t WHERE id = 2")

	// The reader's snapshot predates the delete: the ghost row must
	// come back on the point, range, and full-scan paths, in pk order.
	res := mustExec(t, b, "SELECT v FROM t WHERE id = 2")
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "doomed" {
		t.Errorf("point read of deleted row = %v", res.Rows)
	}
	res = mustExec(t, b, "SELECT v FROM t")
	if len(res.Rows) != 2 || res.Rows[1][0].Str != "doomed" {
		t.Errorf("full scan with ghost = %v", res.Rows)
	}
	res = mustExec(t, b, "SELECT v FROM t WHERE id >= 1 AND id <= 5")
	if len(res.Rows) != 2 {
		t.Errorf("range scan with ghost = %v", res.Rows)
	}
	// The writer no longer sees it.
	res = mustExec(t, a, "SELECT v FROM t WHERE id = 2")
	if len(res.Rows) != 0 {
		t.Errorf("writer sees its own deleted row: %v", res.Rows)
	}

	mustExec(t, a, "COMMIT")
	res = mustExec(t, b, "SELECT v FROM t WHERE id = 2")
	if len(res.Rows) != 0 {
		t.Errorf("committed delete still visible: %v", res.Rows)
	}
}

func TestMVCCSecondaryIndexVisibility(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	a := e.Connect("writer")
	b := e.Connect("reader")
	mustExec(t, a, "CREATE TABLE t (id INT PRIMARY KEY, cat INT, v TEXT)")
	mustExec(t, a, "CREATE INDEX idx_cat ON t (cat)")
	mustExec(t, a, "INSERT INTO t (id, cat, v) VALUES (1, 7, 'one')")
	mustExec(t, a, "INSERT INTO t (id, cat, v) VALUES (2, 7, 'two')")

	mustExec(t, a, "BEGIN")
	mustExec(t, a, "UPDATE t SET cat = 9 WHERE id = 1")
	mustExec(t, a, "DELETE FROM t WHERE id = 2")

	// Index scan on the OLD key: both rows still qualify in the
	// reader's snapshot even though the index tree has moved/member
	// entries deleted.
	res := mustExec(t, b, "SELECT v FROM t WHERE cat = 7")
	if len(res.Rows) != 2 {
		t.Fatalf("index read of pre-image keys = %v, want both rows (path %s)", res.Rows, res.AccessPath)
	}
	// Index scan on the NEW key: the uncommitted move is invisible.
	res = mustExec(t, b, "SELECT v FROM t WHERE cat = 9")
	if len(res.Rows) != 0 {
		t.Errorf("uncommitted index move visible = %v", res.Rows)
	}
	// The writer sees the opposite split.
	res = mustExec(t, a, "SELECT v FROM t WHERE cat = 7")
	if len(res.Rows) != 0 {
		t.Errorf("writer still sees old index keys = %v", res.Rows)
	}
	res = mustExec(t, a, "SELECT v FROM t WHERE cat = 9")
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "one" {
		t.Errorf("writer misses own index move = %v", res.Rows)
	}

	mustExec(t, a, "ROLLBACK")
	// After rollback everything is back where it started, for everyone.
	for _, s := range []*Session{a, b} {
		res = mustExec(t, s, "SELECT v FROM t WHERE cat = 7")
		if len(res.Rows) != 2 {
			t.Errorf("post-rollback index read = %v", res.Rows)
		}
	}
}

// TestMVCCSelectNotBlockedByTableLock is the acceptance criterion:
// with MVCC on, a SELECT completes even while the table's exclusive
// stripe — which every legacy reader would queue behind — is held.
func TestMVCCSelectNotBlockedByTableLock(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	mustExec(t, s, "INSERT INTO t (id, v) VALUES (1, 'x')")

	// Hold the stripe exclusively, as a writer statement would
	// mid-execution.
	mu := e.locks.exclusive("t")
	defer mu.Unlock()

	done := make(chan *Result, 1)
	go func() {
		b := e.Connect("reader")
		defer b.Close()
		done <- mustExec(t, b, "SELECT v FROM t WHERE id = 1")
	}()
	select {
	case res := <-done:
		if len(res.Rows) != 1 || res.Rows[0][0].Str != "x" {
			t.Errorf("rows = %v", res.Rows)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("MVCC SELECT blocked behind the exclusive table stripe")
	}
}

func TestMVCCPurgeRespectsOldestView(t *testing.T) {
	cfg := Defaults()
	cfg.DisablePurge = true // purge only when the test says so
	e, _ := newEngine(t, cfg)
	a := e.Connect("writer")
	b := e.Connect("reader")
	mustExec(t, a, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	mustExec(t, a, "INSERT INTO t (id, v) VALUES (1, 10)")

	mustExec(t, b, "BEGIN")
	mustExec(t, b, "SELECT v FROM t WHERE id = 1") // pins the view
	mustExec(t, a, "UPDATE t SET v = 20 WHERE id = 1")

	// The pinned view still needs v=10: purge may trim versions below
	// it (the pre-insert "absent" marker) but must keep the pre-image.
	e.PurgeVersions(0)
	kept := false
	for _, rv := range e.VersionResidue() {
		if len(rv.Row) == 2 && rv.Row[1].Int == 10 {
			kept = true
		}
	}
	if !kept {
		t.Error("purge dropped the version the open view still needs")
	}
	res := mustExec(t, b, "SELECT v FROM t WHERE id = 1")
	if res.Rows[0][0].Int != 10 {
		t.Errorf("read after failed purge = %v, want 10", res.Rows)
	}

	mustExec(t, b, "COMMIT")
	if n := e.PurgeVersions(0); n == 0 {
		t.Error("purge reclaimed nothing after the pinning view closed")
	}
	if res := e.VersionResidue(); len(res) != 0 {
		t.Errorf("residue after full purge = %v", res)
	}
}

func TestMVCCPurgeBatchBound(t *testing.T) {
	cfg := Defaults()
	cfg.DisablePurge = true
	e, _ := newEngine(t, cfg)
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	for i := 0; i < 6; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, 0)", i))
		mustExec(t, s, fmt.Sprintf("UPDATE t SET v = 1 WHERE id = %d", i))
	}
	before := len(e.VersionResidue())
	if before < 6 {
		t.Fatalf("expected at least one retained version per row, got %d", before)
	}
	// A bounded sweep must reclaim something but not everything.
	n := e.PurgeVersions(2)
	mid := len(e.VersionResidue())
	if n == 0 || mid == 0 || mid >= before {
		t.Errorf("batch purge reclaimed %d versions, residue %d -> %d", n, before, mid)
	}
	// Unbounded sweep drains the rest.
	e.PurgeVersions(0)
	if left := len(e.VersionResidue()); left != 0 {
		t.Errorf("%d versions left after full purge", left)
	}
}

func TestMVCCInlinePurgeRuns(t *testing.T) {
	cfg := Defaults()
	cfg.PurgeEvery = 8 // purge every 8 statements
	e, _ := newEngine(t, cfg)
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	mustExec(t, s, "INSERT INTO t (id, v) VALUES (1, 0)")
	for i := 0; i < 20; i++ {
		mustExec(t, s, "UPDATE t SET v = 1 WHERE id = 1")
		mustExec(t, s, "SELECT v FROM t WHERE id = 1")
	}
	// With no open views, the every-8-statements sweep keeps the store
	// near-empty; without it 20 updates would retain 20 versions.
	if left := len(e.VersionResidue()); left > 2 {
		t.Errorf("inline purge left %d versions", left)
	}
}

func TestMVCCVersionsSurviveCheckpointRecovery(t *testing.T) {
	cfg := Defaults()
	cfg.DisablePurge = true
	mem := vfs.NewMemFS()
	cfg.FS = mem
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Clock = func() int64 { return 1_000_000 }
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE vault (id INT PRIMARY KEY, secret TEXT)")
	mustExec(t, s, "INSERT INTO vault (id, secret) VALUES (1, 'hunter2')")
	mustExec(t, s, "DELETE FROM vault WHERE id = 1")

	// The checkpoint truncates the redo and undo logs — the E13 channel
	// — but serializes the version store alongside the trees.
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mem.Crash()

	rcfg := Defaults()
	rcfg.DisablePurge = true
	r, rep, err := Recover(mem, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CheckpointFound {
		t.Fatal("checkpoint not found")
	}
	// The row is gone from SQL...
	rs := r.Connect("app")
	if res := mustExec(t, rs, "SELECT * FROM vault"); len(res.Rows) != 0 {
		t.Errorf("deleted row visible via SQL: %v", res.Rows)
	}
	// ...but its bytes survived the crash inside the version store.
	residue := r.VersionResidue()
	found := false
	for _, rv := range residue {
		if rv.Table == "vault" && rv.Deleted && len(rv.Row) == 2 && rv.Row[1].Str == "hunter2" {
			found = true
		}
	}
	if !found {
		t.Errorf("deleted secret not recoverable from version store: %+v", residue)
	}
}

func TestMVCCDisabledFallsBackToLocking(t *testing.T) {
	cfg := Defaults()
	cfg.DisableMVCC = true
	e, _ := newEngine(t, cfg)
	a := e.Connect("writer")
	b := e.Connect("reader")
	mustExec(t, a, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	mustExec(t, a, "INSERT INTO t (id, v) VALUES (1, 'before')")
	mustExec(t, a, "BEGIN")
	mustExec(t, a, "UPDATE t SET v = 'after' WHERE id = 1")
	// Legacy current-read semantics: the reader sees the latest tree
	// state, uncommitted or not.
	res := mustExec(t, b, "SELECT v FROM t WHERE id = 1")
	if res.Rows[0][0].Str != "after" {
		t.Errorf("legacy read = %v, want dirty 'after'", res.Rows)
	}
	mustExec(t, a, "ROLLBACK")
	if residue := e.VersionResidue(); residue != nil {
		t.Errorf("version store active with DisableMVCC: %v", residue)
	}
}

func TestMVCCSystemViews(t *testing.T) {
	cfg := Defaults()
	cfg.DisablePurge = true
	e, _ := newEngine(t, cfg)
	a := e.Connect("writer")
	b := e.Connect("monitor")
	mustExec(t, a, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	mustExec(t, a, "INSERT INTO t (id, v) VALUES (1, 'x')")
	mustExec(t, a, "BEGIN")
	mustExec(t, a, "UPDATE t SET v = 'y' WHERE id = 1")
	mustExec(t, a, "DELETE FROM t WHERE id = 1")

	res := mustExec(t, b, "SELECT * FROM information_schema.active_transactions")
	if len(res.Rows) != 1 {
		t.Fatalf("active_transactions rows = %v", res.Rows)
	}
	// One undo record per updated column plus one per deleted row.
	if undo := res.Rows[0][3].Int; undo != 2 {
		t.Errorf("undo_records = %d, want 2", undo)
	}
	res = mustExec(t, b, "SELECT * FROM information_schema.mvcc_version_store")
	if len(res.Rows) != 1 {
		t.Fatalf("mvcc_version_store rows = %v", res.Rows)
	}
	if res.Rows[0][0].Str != "t" || res.Rows[0][3].Int != 1 {
		t.Errorf("chain row = %v, want table t deleted=1", res.Rows[0])
	}
	res = mustExec(t, b, "SELECT * FROM information_schema.mvcc_status")
	if len(res.Rows) != 1 || res.Rows[0][1].Int != 1 {
		t.Errorf("mvcc_status = %v, want 1 chain", res.Rows)
	}
	mustExec(t, a, "ROLLBACK")
	res = mustExec(t, b, "SELECT * FROM information_schema.active_transactions")
	if len(res.Rows) != 0 {
		t.Errorf("active_transactions after rollback = %v", res.Rows)
	}
}

func TestSetTransactionReadOnly(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	mustExec(t, s, "INSERT INTO t (id, v) VALUES (1, 'x')")

	mustExec(t, s, "SET TRANSACTION READ ONLY")
	mustExec(t, s, "BEGIN")
	for _, q := range []string{
		"INSERT INTO t (id, v) VALUES (2, 'y')",
		"UPDATE t SET v = 'z' WHERE id = 1",
		"DELETE FROM t WHERE id = 1",
	} {
		if _, err := s.Execute(q); err == nil || !strings.Contains(err.Error(), "READ ONLY") {
			t.Errorf("%s in read-only txn: err = %v", q, err)
		}
	}
	res := mustExec(t, s, "SELECT v FROM t WHERE id = 1")
	if len(res.Rows) != 1 {
		t.Errorf("read in read-only txn = %v", res.Rows)
	}
	mustExec(t, s, "COMMIT")

	// The access mode is one-shot: the next transaction is read-write.
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO t (id, v) VALUES (2, 'y')")
	mustExec(t, s, "COMMIT")

	// SET TRANSACTION READ WRITE parses and resets nothing harmful.
	mustExec(t, s, "SET TRANSACTION READ WRITE")
	// Refused with a transaction open.
	mustExec(t, s, "BEGIN")
	if _, err := s.Execute("SET TRANSACTION READ ONLY"); err == nil {
		t.Error("SET TRANSACTION accepted inside an open transaction")
	}
	mustExec(t, s, "ROLLBACK")
}

func TestDropTable(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	mustExec(t, s, "INSERT INTO t (id, v) VALUES (1, 'x')")
	mustExec(t, s, "DROP TABLE t")
	if _, err := s.Execute("SELECT * FROM t"); err == nil {
		t.Error("SELECT from dropped table succeeded")
	}
	if _, err := s.Execute("DROP TABLE t"); err == nil {
		t.Error("double DROP succeeded")
	}
	// The name is free again.
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, n INT)")
	mustExec(t, s, "INSERT INTO t (id, n) VALUES (1, 42)")
	res := mustExec(t, s, "SELECT n FROM t WHERE id = 1")
	if res.Rows[0][0].Int != 42 {
		t.Errorf("recreated table read = %v", res.Rows)
	}

	mustExec(t, s, "BEGIN")
	if _, err := s.Execute("DROP TABLE t"); err == nil {
		t.Error("DROP TABLE inside a transaction succeeded")
	}
	mustExec(t, s, "ROLLBACK")
}
