package engine

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"snapdb/internal/engine/exec"
	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
)

// Multi-version concurrency control. Writers keep updating the B+
// trees in place exactly as before — the tree always holds the newest
// state — but every row mutation now also files the row's pre-image
// into a per-primary-key version chain. The pre-images are the same
// ones the undo log has always carried; this file promotes them from a
// rollback buffer into a visibility structure, which is the InnoDB
// design the paper's §3 describes. A statement (or, for repeatable
// read, a transaction) opens a read view — a snapshot of the commit
// sequence — and scans resolve every chained row against that view
// instead of blocking on the writer's stripe lock: SELECTs take no
// table locks at all.
//
// The cost, and the point of experiment E16, is a brand-new forensic
// surface the paper predicts under "deleted data persists" (§4): every
// old version — including rows the application deleted — survives in
// the version store until the background purge reclaims it, and the
// store is serialized into checkpoints, so the residue outlives even a
// WAL truncation. What the redo log forgets, the version store still
// remembers.

// pkKey is a primary-key value in comparable form, usable as a map key.
type pkKey struct {
	isInt bool
	i     int64
	s     string
}

func keyOf(v sqlparse.Value) pkKey {
	return pkKey{isInt: v.IsInt, i: v.Int, s: v.Str}
}

func (k pkKey) value() sqlparse.Value {
	return sqlparse.Value{IsInt: k.isInt, Int: k.i, Str: k.s}
}

// version is one historical row state: the full row image (nil when
// the row did not exist at that point) and the transaction that wrote
// it. Txn 0 means "ancient" — older than every tracked transaction,
// visible to every view.
type version struct {
	row storage.Record
	txn uint64
}

// chain is the version chain of one primary key: the tree (or its
// absence, when deleted is set) is the newest version, written by
// latestTxn; olds holds the superseded versions newest-first.
type chain struct {
	latestTxn uint64
	deleted   bool
	olds      []version
}

// readView is a consistent-read snapshot: commits with a sequence at
// or below snap are visible, as are the view's own transaction's
// writes. Autocommit SELECTs use ephemeral views (txn 0); an explicit
// transaction pins one view at its first read (repeatable read).
type readView struct {
	snap uint64
	txn  uint64
}

// tableVersions is one table's slice of the store. counter aliases the
// owning Table's mvccChains, the lock-free "does this table have any
// chains at all" fast-path gate.
type tableVersions struct {
	counter *mvccCounter
	chains  map[pkKey]*chain
}

// mvccStore is the engine-wide version store. All fields are guarded
// by mu; the store is a leaf lock (nothing else is acquired while
// holding it), taken under the table latch by writers and readers and
// bare by the purger.
type mvccStore struct {
	mu      sync.Mutex
	seq     uint64            // commit sequence counter
	commits map[uint64]uint64 // txn -> commit seq; absent = unresolved
	tables  map[uint8]*tableVersions
	views   map[*readView]struct{}

	purgeRuns      uint64
	purgedVersions uint64
}

func newMVCCStore() *mvccStore {
	return &mvccStore{
		commits: make(map[uint64]uint64),
		tables:  make(map[uint8]*tableVersions),
		views:   make(map[*readView]struct{}),
	}
}

// visibleLocked reports whether a version written by txn t is visible
// to view v. Caller holds st.mu.
func (st *mvccStore) visibleLocked(v *readView, t uint64) bool {
	if t == 0 || t == v.txn {
		return true
	}
	s, ok := st.commits[t]
	return ok && s <= v.snap
}

// noteWrite files a row's pre-image before a mutation: pre is the row
// as it was (nil for an INSERT — the row did not exist), deletedNow
// reports whether the mutation removes the row from the tree, and txn
// is the writer. Called once per mutated row, under the table's write
// latch.
func (st *mvccStore) noteWrite(t *Table, pk sqlparse.Value, pre storage.Record, deletedNow bool, txn uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	tv := st.tables[t.ID]
	if tv == nil {
		tv = &tableVersions{counter: &t.mvccChains, chains: make(map[pkKey]*chain)}
		st.tables[t.ID] = tv
	}
	k := keyOf(pk)
	c := tv.chains[k]
	if c == nil {
		// First version on this key: the pre-image is the ancient state,
		// visible to every view.
		tv.chains[k] = &chain{
			latestTxn: txn,
			deleted:   deletedNow,
			olds:      []version{{row: pre, txn: 0}},
		}
		tv.counter.Add(1)
		return
	}
	c.olds = append(c.olds, version{})
	copy(c.olds[1:], c.olds)
	c.olds[0] = version{row: pre, txn: c.latestTxn}
	c.latestTxn = txn
	c.deleted = deletedNow
}

// commit assigns txn the next commit sequence, making its versions
// visible to views opened from here on. Rollback also calls it once
// the compensations are applied: the chain's latest state then equals
// the pre-transaction state, the intermediate versions stay invisible
// to everyone, and purge can resolve the chain.
func (st *mvccStore) commit(txn uint64) {
	if txn == 0 {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.commits[txn]; ok {
		return
	}
	st.seq++
	st.commits[txn] = st.seq
}

// newView opens and registers a read view at the current commit
// horizon. Registered views pin their versions against purge.
func (st *mvccStore) newView(txn uint64) *readView {
	st.mu.Lock()
	defer st.mu.Unlock()
	v := &readView{snap: st.seq, txn: txn}
	st.views[v] = struct{}{}
	return v
}

// release unregisters a view, letting purge reclaim what only it saw.
func (st *mvccStore) release(v *readView) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.views, v)
}

// dropTable discards a dropped table's chains.
func (st *mvccStore) dropTable(id uint8) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.tables, id)
}

// visEntry is one resolved chain in a versionFilter: the row version
// the view sees (nil = the key is absent in the view) and whether the
// tree still holds the key at all.
type visEntry struct {
	row        storage.Record
	treeAbsent bool
}

// versionFilter is a statement's immutable visibility snapshot: every
// chained key of the scanned table resolved against the read view,
// built once under st.mu so the scan itself touches no shared state.
// The map holds only keys whose tree state is NOT what the view sees;
// unlisted keys read straight from the tree.
type versionFilter struct {
	res map[pkKey]visEntry
}

// filterFor resolves table t's chains against view v. Nil when the
// table has no chains, or every chain's newest version is visible to v
// (the tree is exactly the view).
func (st *mvccStore) filterFor(t *Table, v *readView) *versionFilter {
	st.mu.Lock()
	defer st.mu.Unlock()
	tv := st.tables[t.ID]
	if tv == nil || len(tv.chains) == 0 {
		return nil
	}
	var res map[pkKey]visEntry
	for k, c := range tv.chains {
		if st.visibleLocked(v, c.latestTxn) {
			continue // tree state is the visible version
		}
		e := visEntry{treeAbsent: c.deleted}
		for _, old := range c.olds {
			if st.visibleLocked(v, old.txn) {
				e.row = old.row
				break
			}
		}
		if res == nil {
			res = make(map[pkKey]visEntry)
		}
		res[k] = e
	}
	if res == nil {
		return nil
	}
	return &versionFilter{res: res}
}

// rowResolve is the clustered-scan hook: substitute a visited tree row
// with the view's version, or suppress it when the view predates the
// row.
func (f *versionFilter) rowResolve(r storage.Record) (storage.Record, bool) {
	e, ok := f.res[keyOf(r[0])]
	if !ok {
		return r, true
	}
	if e.row == nil {
		return nil, false
	}
	return e.row, true
}

// rowGhosts returns the rows the view sees but the tree no longer
// holds (deleted keys with a visible old version), restricted to
// [lo, hi] when bounded, sorted by primary key.
func (f *versionFilter) rowGhosts(bounded bool, lo, hi sqlparse.Value) []storage.Record {
	var out []storage.Record
	for _, e := range f.res {
		if !e.treeAbsent || e.row == nil {
			continue
		}
		if bounded && (e.row[0].Compare(lo) < 0 || e.row[0].Compare(hi) > 0) {
			continue
		}
		out = append(out, e.row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0].Compare(out[j][0]) < 0 })
	return out
}

// entryResolve is the secondary-index leaf hook: suppress every entry
// whose primary key is chained away from the tree state — the visible
// version's entry is re-emitted as a ghost at its own composite key.
func (f *versionFilter) entryResolve(entry storage.Record) (storage.Record, bool) {
	if _, ok := f.res[keyOf(entry[1])]; ok {
		return nil, false
	}
	return entry, true
}

// entryGhosts builds the index entries of the visible versions of
// every chained key, restricted to the scan's composite-key bounds,
// sorted by composite key. colIdx is the indexed schema column.
func (f *versionFilter) entryGhosts(colIdx int, lo, hi sqlparse.Value) []storage.Record {
	var out []storage.Record
	for _, e := range f.res {
		if e.row == nil || colIdx >= len(e.row) {
			continue
		}
		comp := indexKey(e.row[colIdx], e.row[0])
		if comp.Compare(lo) < 0 || comp.Compare(hi) > 0 {
			continue
		}
		out = append(out, storage.Record{comp, e.row[0]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0].Compare(out[j][0]) < 0 })
	return out
}

// lookupResolve serves a KeyLookup straight from the filter for
// chained keys: the tree may not even hold the key (a ghost entry's
// row was deleted), and when it does, its row is not the view's.
func (f *versionFilter) lookupResolve(pk sqlparse.Value) (storage.Record, bool) {
	e, ok := f.res[keyOf(pk)]
	if !ok || e.row == nil {
		return nil, false
	}
	return e.row, true
}

// armVisibility installs the filter's hooks on an instantiated plan:
// row substitution + pk-ordered ghost merge on clustered leaves, entry
// suppression + composite-ordered ghost merge + lookup interception on
// index paths. A nil filter leaves the plan a current read.
func (pi *planInstance) armVisibility(pp *physicalPlan, vf *versionFilter) {
	if vf == nil {
		return
	}
	var vis *exec.Visibility
	if pp.kind == accessIndex {
		vis = &exec.Visibility{
			Resolve: vf.entryResolve,
			Ghosts:  vf.entryGhosts(pp.ix.colIdx, pp.lo, pp.hi),
		}
		pi.lookup.SetLookupResolver(vf.lookupResolve)
	} else {
		bounded := pp.kind == accessPKPoint || pp.kind == accessPKRange
		vis = &exec.Visibility{
			Resolve: vf.rowResolve,
			Ghosts:  vf.rowGhosts(bounded, pp.lo, pp.hi),
		}
	}
	if sv, ok := pi.leaf.(interface{ SetVisibility(*exec.Visibility) }); ok {
		sv.SetVisibility(vis)
	}
}

// purge reclaims versions no registered view (nor any future view) can
// reach: a version is dead once the version that superseded it is
// visible to the oldest registered view. Chains whose newest state is
// visible to every view are dropped whole — including tombstones,
// which is when a deleted row's last pre-image finally stops being
// recoverable (E16's mitigation ablation measures exactly this
// window). batch bounds the chains examined in one sweep; 0 sweeps
// everything. Returns the number of versions reclaimed.
func (st *mvccStore) purge(batch int) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.purgeRuns++
	oldest := st.seq
	for v := range st.views {
		if v.snap < oldest {
			oldest = v.snap
		}
	}
	resolvedBefore := func(t uint64) bool {
		if t == 0 {
			return true
		}
		s, ok := st.commits[t]
		return ok && s <= oldest
	}
	examined, removed := 0, 0
	full := true
	for _, tv := range st.tables {
		for k, c := range tv.chains {
			if batch > 0 && examined >= batch {
				full = false
				break
			}
			examined++
			if resolvedBefore(c.latestTxn) {
				removed += len(c.olds)
				delete(tv.chains, k)
				tv.counter.Add(-1)
				continue
			}
			for i, old := range c.olds {
				if resolvedBefore(old.txn) {
					removed += len(c.olds) - i - 1
					c.olds = c.olds[:i+1]
					break
				}
			}
		}
		if !full {
			break
		}
	}
	if full {
		// Prune commit-sequence entries no chain references anymore.
		referenced := make(map[uint64]bool)
		for _, tv := range st.tables {
			for _, c := range tv.chains {
				referenced[c.latestTxn] = true
				for _, old := range c.olds {
					referenced[old.txn] = true
				}
			}
		}
		for txn := range st.commits {
			if !referenced[txn] {
				delete(st.commits, txn)
			}
		}
	}
	st.purgedVersions += uint64(removed)
	return removed
}

// --- engine wiring ---

// mvccCounter is the per-table chain counter the store aliases so it
// can maintain each Table's lock-free fast-path gate.
type mvccCounter = atomic.Int64

// noteVersion files a pre-image if MVCC is enabled. All DML mutation
// loops, undo application, and redo replay route through it.
func (e *Engine) noteVersion(t *Table, pk sqlparse.Value, pre storage.Record, deletedNow bool, txn uint64) {
	if e.versions != nil {
		e.versions.noteWrite(t, pk, pre, deletedNow, txn)
	}
}

// commitVersions resolves txn in the version store if MVCC is enabled.
func (e *Engine) commitVersions(txn uint64) {
	if e.versions != nil {
		e.versions.commit(txn)
	}
}

// selectView returns the read view an MVCC SELECT on t resolves
// against, or nil when the tree is exactly the view (no chains on the
// table — purge only drops chains every registered view already sees,
// so a registered transaction view stays correct through a nil here).
// The returned release func (ephemeral autocommit views only)
// unregisters the view at statement end.
func (e *Engine) selectView(s *Session, t *Table) (*readView, func()) {
	if s.txn != nil {
		// Repeatable read: the transaction's view pins at its first
		// consistent read, clean table or not.
		s.txn.mu.Lock()
		if s.txn.view == nil {
			s.txn.view = e.versions.newView(s.txn.walTxn)
		}
		v := s.txn.view
		s.txn.mu.Unlock()
		if t.mvccChains.Load() == 0 {
			return nil, nil
		}
		return v, nil
	}
	if t.mvccChains.Load() == 0 {
		return nil, nil
	}
	v := e.versions.newView(0)
	return v, func() { e.versions.release(v) }
}

// execSelectMVCC is the snapshot-isolation read path: no stripe lock —
// the statement holds only the table's read latch (writers hold it
// exclusively just across their tree mutations), resolves chained rows
// through a versionFilter, and bypasses the query cache whenever a
// filter is in play (cached results are current reads). With no filter
// the body is byte-for-byte the legacy read, cache included.
func (e *Engine) execSelectMVCC(s *Session, st *sqlparse.Select, pl *plan, query string) (*Result, error) {
	t, err := e.planTable(pl, st.Table)
	if err != nil {
		return nil, err
	}
	// Device latency is paid before the latch so a sleeping reader
	// never holds writers up.
	e.simulateIO()
	t.latch.RLock()
	defer t.latch.RUnlock()
	view, release := e.selectView(s, t)
	if release != nil {
		defer release()
	}
	var vf *versionFilter
	if view != nil {
		vf = e.versions.filterFor(t, view)
	}
	if vf == nil {
		if cached, ok := e.qcache.Get(query); ok {
			return &Result{Columns: selectColumns(t, st), Rows: cached, FromCache: true}, nil
		}
	}
	pp := e.physSelect(pl, t, st)
	if pp.whereErr != nil {
		return nil, pp.whereErr
	}
	// Visibility hooks live in the serial leaves; a filtered scan never
	// fans out across partition workers.
	pi := pp.instantiateOpts(e.fc, vf != nil)
	pi.armDeadline(s.deadlineCheck())
	pi.armVisibility(pp, vf)
	rows, err := pi.drain()
	if err != nil {
		return nil, err
	}
	if pp.deferredErr != nil {
		return nil, pp.deferredErr
	}
	res := &Result{
		Columns:      selectColumns(t, st),
		Rows:         rows,
		RowsExamined: pi.examined(),
		AccessPath:   pp.path,
		stages:       pi.stages(),
		estRows:      pp.estRows,
		estCost:      pp.estCost,
		scanDesc:     pi.leaf.Describe(),
	}
	if vf == nil {
		e.qcache.Put(query, t.Name, rows)
	}
	return res, nil
}

// PurgeVersions runs one purge sweep over at most batch chains (0 =
// all chains), returning the number of row versions reclaimed. The
// engine also purges inline every Config.PurgeEvery statements and,
// when Config.PurgeInterval is set, from a background goroutine.
func (e *Engine) PurgeVersions(batch int) int {
	if e.versions == nil {
		return 0
	}
	return e.versions.purge(batch)
}

// purgeLoop is the background purger (Config.PurgeInterval > 0).
func (e *Engine) purgeLoop(interval time.Duration) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-e.purgeStop:
			return
		case <-tick.C:
			e.versions.purge(e.cfg.PurgeBatch)
		}
	}
}

// Close stops the background purge goroutine, if one was started. Safe
// to call multiple times; the engine remains usable (purge continues
// inline on the statement path).
func (e *Engine) Close() {
	e.purgeOnce.Do(func() {
		if e.purgeStop != nil {
			close(e.purgeStop)
		}
	})
}

// ResidueVersion is one recoverable old row version, as the forensic
// surface exposes it: VersionResidue is what an analyst with engine
// access (or a recovered snapshot) reads to resurrect overwritten and
// deleted rows the application believes are gone.
type ResidueVersion struct {
	Table   string
	PK      sqlparse.Value
	Row     storage.Record // the old version's full row image
	Txn     uint64         // transaction that wrote this version (0 = ancient)
	Deleted bool           // the key is tombstoned: the tree no longer holds it
}

// VersionResidue returns every retained old row version with a row
// image, sorted by (table, pk, chain position). Deleted marks versions
// whose key the application deleted — the §4 "deleted data persists"
// channel E16 quantifies.
func (e *Engine) VersionResidue() []ResidueVersion {
	if e.versions == nil {
		return nil
	}
	names := make(map[uint8]string)
	e.mu.Lock()
	for id, t := range e.tablesByID {
		names[id] = t.Name
	}
	e.mu.Unlock()
	st := e.versions
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []ResidueVersion
	for id, tv := range st.tables {
		name := names[id]
		if name == "" {
			name = "(dropped)"
		}
		for k, c := range tv.chains {
			for _, old := range c.olds {
				if old.row == nil {
					continue
				}
				out = append(out, ResidueVersion{
					Table:   name,
					PK:      k.value(),
					Row:     old.row,
					Txn:     old.txn,
					Deleted: c.deleted,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].PK.Compare(out[j].PK) < 0
	})
	return out
}

// --- checkpoint serialization ---

// ckptVersion, ckptChain and ckptVersions carry the version store
// through checkpoints: the residue is crash-visible, and — the E16
// headline — survives the WAL truncation the checkpoint performs. At
// checkpoint time no transactions are open, so every chain is fully
// resolved and raw txn ids round-trip safely (recovery re-bases the
// txn sequence above the checkpoint's maximum).
type ckptVersion struct {
	Row storage.Record `json:",omitempty"`
	Txn uint64
}

type ckptChain struct {
	Table     uint8
	PK        sqlparse.Value
	LatestTxn uint64
	Deleted   bool `json:",omitempty"`
	Olds      []ckptVersion
}

type ckptVersions struct {
	Seq     uint64
	Commits map[uint64]uint64
	Chains  []ckptChain
}

// ckptSnapshot serializes the store deterministically: chains sorted
// by (table, pk); the commits map serializes with sorted keys.
func (st *mvccStore) ckptSnapshot() *ckptVersions {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := &ckptVersions{Seq: st.seq, Commits: make(map[uint64]uint64, len(st.commits))}
	for txn, s := range st.commits {
		out.Commits[txn] = s
	}
	for id, tv := range st.tables {
		for k, c := range tv.chains {
			cc := ckptChain{Table: id, PK: k.value(), LatestTxn: c.latestTxn, Deleted: c.deleted}
			for _, old := range c.olds {
				cc.Olds = append(cc.Olds, ckptVersion{Row: old.row, Txn: old.txn})
			}
			out.Chains = append(out.Chains, cc)
		}
	}
	sort.Slice(out.Chains, func(i, j int) bool {
		if out.Chains[i].Table != out.Chains[j].Table {
			return out.Chains[i].Table < out.Chains[j].Table
		}
		return out.Chains[i].PK.Compare(out.Chains[j].PK) < 0
	})
	if len(out.Chains) == 0 && len(out.Commits) == 0 && out.Seq == 0 {
		return nil
	}
	return out
}

// loadCkpt restores a checkpointed version store. tables resolves
// table ids to their (freshly reopened) catalog entries; chains of
// unknown tables are dropped, like their WAL records.
func (st *mvccStore) loadCkpt(cv *ckptVersions, tables map[uint8]*Table) {
	if cv == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.seq = cv.Seq
	st.commits = make(map[uint64]uint64, len(cv.Commits))
	for txn, s := range cv.Commits {
		st.commits[txn] = s
	}
	st.tables = make(map[uint8]*tableVersions)
	for _, cc := range cv.Chains {
		t, ok := tables[cc.Table]
		if !ok {
			continue
		}
		tv := st.tables[cc.Table]
		if tv == nil {
			tv = &tableVersions{counter: &t.mvccChains, chains: make(map[pkKey]*chain)}
			st.tables[cc.Table] = tv
		}
		c := &chain{latestTxn: cc.LatestTxn, deleted: cc.Deleted}
		for _, old := range cc.Olds {
			c.olds = append(c.olds, version{row: old.Row, txn: old.Txn})
		}
		tv.chains[keyOf(cc.PK)] = c
		tv.counter.Add(1)
	}
}

// mvccStatus is a point-in-time summary for the diagnostics surface.
type mvccStatus struct {
	seq            uint64
	chains         int
	versions       int
	views          int
	oldestViewSnap uint64
	commitsTracked int
	purgeRuns      uint64
	purgedVersions uint64
}

func (st *mvccStore) status() mvccStatus {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := mvccStatus{
		seq:            st.seq,
		views:          len(st.views),
		oldestViewSnap: st.seq,
		commitsTracked: len(st.commits),
		purgeRuns:      st.purgeRuns,
		purgedVersions: st.purgedVersions,
	}
	for v := range st.views {
		if v.snap < s.oldestViewSnap {
			s.oldestViewSnap = v.snap
		}
	}
	for _, tv := range st.tables {
		s.chains += len(tv.chains)
		for _, c := range tv.chains {
			s.versions += len(c.olds)
		}
	}
	return s
}
