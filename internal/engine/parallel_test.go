package engine

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// parallelConfig returns Defaults with the parallel scan armed
// aggressively enough to fire on test-sized tables.
func parallelConfig() Config {
	cfg := Defaults()
	cfg.MaxScanWorkers = 4
	cfg.ParallelScanMinRows = 1
	cfg.EnableQueryCache = false
	return cfg
}

// setupWide populates a table with n rows at stride-3 primary keys, so
// partition boundaries fall between keys as often as on them.
func setupWide(t testing.TB, s *Session, n int) {
	t.Helper()
	mustExec(t, s, "CREATE TABLE wide (id INT PRIMARY KEY, grp INT, score INT, name TEXT)")
	for i := 0; i < n; i++ {
		mustExec(t, s, fmt.Sprintf(
			"INSERT INTO wide (id, grp, score, name) VALUES (%d, %d, %d, 'w%d')",
			i*3, i%7, (i*37)%100, i))
	}
}

// TestParallelScanMatchesSerial: the merged parallel result must be
// byte-identical to the serial scan's — same rows, same order, same
// examined counts, same access path — across full scans, pk ranges,
// filters, sorts, and aggregates.
func TestParallelScanMatchesSerial(t *testing.T) {
	queries := []string{
		"SELECT * FROM wide",
		"SELECT name FROM wide WHERE grp = 3",
		"SELECT * FROM wide WHERE score > 40",
		"SELECT * FROM wide WHERE id >= 30 AND id <= 1200",
		"SELECT name, score FROM wide WHERE id >= 100 AND id <= 700 ORDER BY score DESC LIMIT 5",
		"SELECT id FROM wide ORDER BY score LIMIT 7",
		"SELECT COUNT(*) FROM wide WHERE grp = 2",
		"SELECT SUM(score) FROM wide WHERE id >= 0 AND id <= 600",
	}
	type outcome struct {
		rows     string
		examined int
		path     string
	}
	run := func(cfg Config) []outcome {
		e, _ := newEngine(t, cfg)
		s := e.Connect("app")
		defer s.Close()
		setupWide(t, s, 500)
		mustExec(t, s, "ANALYZE TABLE wide")
		var out []outcome
		for _, q := range queries {
			res := mustExec(t, s, q)
			out = append(out, outcome{renderResult(res, nil), res.RowsExamined, res.AccessPath})
		}
		return out
	}

	par := run(parallelConfig())
	cfgSerial := parallelConfig()
	cfgSerial.DisableParallelScan = true
	ser := run(cfgSerial)

	for i := range queries {
		if par[i] != ser[i] {
			t.Errorf("%s:\nparallel: %+v\nserial:   %+v", queries[i], par[i], ser[i])
		}
	}
}

// TestParallelExplainShowsPartitions: the plan renders the ParallelScan
// leaf with one child line per partition, and EXPLAIN ANALYZE carries
// per-partition examined counts that sum to the serial total.
func TestParallelExplainShowsPartitions(t *testing.T) {
	e, _ := newEngine(t, parallelConfig())
	s := e.Connect("app")
	defer s.Close()
	setupWide(t, s, 500)
	mustExec(t, s, "ANALYZE TABLE wide")

	lines, res := explainLines(t, s, "EXPLAIN SELECT * FROM wide WHERE score > 40")
	joined := strings.Join(lines, "\n")
	if res.AccessPath != "full-scan" {
		t.Fatalf("access path = %q, want full-scan", res.AccessPath)
	}
	if !strings.Contains(joined, "Parallel scan on wide (workers=4)") {
		t.Fatalf("EXPLAIN missing parallel leaf:\n%s", joined)
	}
	nParts := 0
	for _, l := range lines {
		if strings.Contains(l, "Partition ") {
			nParts++
		}
	}
	if nParts != 4 {
		t.Fatalf("EXPLAIN shows %d partitions, want 4:\n%s", nParts, joined)
	}

	lines, _ = explainLines(t, s, "EXPLAIN ANALYZE SELECT * FROM wide WHERE score > 40")
	joined = strings.Join(lines, "\n")
	if !strings.Contains(joined, "Parallel scan on wide (workers=4)") ||
		!strings.Contains(joined, "est_rows=") {
		t.Fatalf("EXPLAIN ANALYZE missing annotated parallel leaf:\n%s", joined)
	}
	// The partition lines carry the per-worker examined counts; they
	// must sum to the whole table.
	sum := 0
	for _, l := range lines {
		if !strings.Contains(l, "Partition ") {
			continue
		}
		var ex int
		if _, err := fmt.Sscanf(l[strings.Index(l, "(examined="):], "(examined=%d", &ex); err != nil {
			t.Fatalf("unparseable partition line %q: %v", l, err)
		}
		sum += ex
	}
	if sum != 500 {
		t.Fatalf("partition examined counts sum to %d, want 500:\n%s", sum, joined)
	}

	// A serial engine never shows the parallel operators.
	cfgSerial := parallelConfig()
	cfgSerial.DisableParallelScan = true
	e2, _ := newEngine(t, cfgSerial)
	s2 := e2.Connect("app")
	defer s2.Close()
	setupWide(t, s2, 500)
	mustExec(t, s2, "ANALYZE TABLE wide")
	lines, _ = explainLines(t, s2, "EXPLAIN SELECT * FROM wide WHERE score > 40")
	joined = strings.Join(lines, "\n")
	if strings.Contains(joined, "Parallel") || strings.Contains(joined, "Partition") {
		t.Fatalf("DisableParallelScan plan still parallel:\n%s", joined)
	}
}

// parallelWorkload is the randomized differential mix with ANALYZE
// statements spliced in, so full-scan fan-out (which requires key-space
// statistics) participates alongside pk-range fan-out.
func parallelWorkload() []string {
	base := randomWorkload(rand.New(rand.NewSource(0xC0FFEE)))
	w := make([]string, 0, len(base)+3)
	for i, q := range base {
		switch i {
		case 80, 150, 230:
			w = append(w, "ANALYZE TABLE items")
		}
		w = append(w, q)
	}
	return w
}

// TestDifferentialParallelVsSerial pushes the same randomized workload
// through a parallel-scanning engine and a DisableParallelScan engine:
// every statement outcome and every durable artifact surface — general
// log, binlog, digest summary, statement history, heap arena — must be
// byte-identical. The buffer-pool fetch trace and LRU state are
// deliberately NOT compared: concurrent partition workers scramble
// them, which is the leakage-profile change experiment E15 measures.
func TestDifferentialParallelVsSerial(t *testing.T) {
	workload := parallelWorkload()

	type runState struct {
		outcomes []string
		fs       forensicState
	}
	run := func(serial bool) runState {
		cfg := parallelConfig()
		cfg.DisableParallelScan = serial
		cfg.EnableGeneralLog = true
		e, now := newEngine(t, cfg)
		var rs runState
		s := e.Connect("diff")
		defer s.Close()
		for _, q := range workload {
			*now++
			res, err := s.Execute(q)
			rs.outcomes = append(rs.outcomes, renderResult(res, err))
		}
		rs.fs = captureForensics(e)
		return rs
	}

	par := run(false)
	ser := run(true)

	if len(par.outcomes) != len(ser.outcomes) {
		t.Fatalf("outcome count mismatch: %d vs %d", len(par.outcomes), len(ser.outcomes))
	}
	for i := range par.outcomes {
		if par.outcomes[i] != ser.outcomes[i] {
			t.Errorf("statement %d %q:\nparallel: %s\nserial:   %s",
				i, workload[i], par.outcomes[i], ser.outcomes[i])
		}
	}
	for _, cmp := range []struct {
		name string
		a, b []string
	}{
		{"general log", par.fs.general, ser.fs.general},
		{"binlog", par.fs.binlog, ser.fs.binlog},
		{"digest summary", par.fs.digests, ser.fs.digests},
		{"statement history", par.fs.history, ser.fs.history},
		{"statements current", par.fs.current, ser.fs.current},
	} {
		if !reflect.DeepEqual(cmp.a, cmp.b) {
			t.Errorf("%s differs between parallel and serial runs (%d vs %d entries)",
				cmp.name, len(cmp.a), len(cmp.b))
		}
	}
	if !bytes.Equal(par.fs.arena, ser.fs.arena) {
		t.Errorf("heap arena images differ between parallel and serial runs")
	}
	if par.fs.statements != ser.fs.statements {
		t.Errorf("statement counters differ: %d vs %d", par.fs.statements, ser.fs.statements)
	}
}

// TestPlanCacheLeakageEquivalenceParallel is the plan-cache leakage
// property under parallel scans: a cached template must fan out exactly
// as a freshly built plan does (the partition split happens at
// instantiate time from live state), so every forensic surface except
// the concurrency-scrambled fetch trace matches with the plan cache on
// vs off.
func TestPlanCacheLeakageEquivalenceParallel(t *testing.T) {
	var workload []string
	workload = append(workload, "CREATE TABLE wide (id INT PRIMARY KEY, grp INT, score INT, name TEXT)")
	for i := 0; i < 300; i++ {
		workload = append(workload, fmt.Sprintf(
			"INSERT INTO wide (id, grp, score, name) VALUES (%d, %d, %d, 'w%d')",
			i*3, i%7, (i*37)%100, i))
	}
	workload = append(workload,
		"ANALYZE TABLE wide",
		"SELECT * FROM wide WHERE score > 40",
		"SELECT * FROM wide WHERE score > 40", // plan-cache hit → cached template fans out
		"SELECT name FROM wide WHERE id >= 30 AND id <= 600",
		"SELECT name FROM wide WHERE id >= 30 AND id <= 600",
		"INSERT INTO wide (id, grp, score, name) VALUES (10000, 1, 1, 'tail')", // widens pk bounds
		"SELECT * FROM wide WHERE score > 40",                                  // re-partitioned against the widened bounds
		"SELECT COUNT(*) FROM wide",
	)

	run := func(disable bool) forensicState {
		cfg := parallelConfig()
		cfg.DisablePlanCache = disable
		cfg.EnableGeneralLog = true
		e, now := newEngine(t, cfg)
		s := e.Connect("victim")
		defer s.Close()
		for _, q := range workload {
			*now++
			if _, err := s.Execute(q); err != nil {
				t.Fatalf("Execute(%q): %v", q, err)
			}
		}
		return captureForensics(e)
	}

	withCache := run(false)
	without := run(true)
	for _, cmp := range []struct {
		name string
		a, b []string
	}{
		{"general log", withCache.general, without.general},
		{"binlog", withCache.binlog, without.binlog},
		{"digest summary", withCache.digests, without.digests},
		{"statement history", withCache.history, without.history},
		{"statements current", withCache.current, without.current},
		{"stages history", withCache.stages, without.stages},
	} {
		if !reflect.DeepEqual(cmp.a, cmp.b) {
			t.Errorf("%s differs with plan cache on vs off under parallel scans", cmp.name)
		}
	}
	if !bytes.Equal(withCache.arena, without.arena) {
		t.Errorf("heap arena images differ: %d vs %d bytes", len(withCache.arena), len(without.arena))
	}
	if withCache.statements != without.statements {
		t.Errorf("statement counters differ: %d vs %d", withCache.statements, without.statements)
	}
}

// TestParallelScanDeadline: a statement deadline fires inside the
// partition workers — the fan-out cancels promptly, the statement
// returns the typed timeout error, and the session keeps working.
func TestParallelScanDeadline(t *testing.T) {
	cfg := parallelConfig()
	cfg.StatementTimeout = 50 * time.Millisecond
	e, _ := newEngine(t, cfg)
	// Concurrency-safe stepped clock: every ExecClock call advances an
	// atomic tick counter by the current step, so partition workers can
	// consult the deadline simultaneously without racing the test.
	base := time.Unix(0, 0)
	var ticks, step atomic.Int64
	e.ExecClock = func() time.Time {
		return base.Add(time.Duration(ticks.Add(step.Load())))
	}
	s := e.Connect("app")
	defer s.Close()
	setupWide(t, s, 600)
	mustExec(t, s, "ANALYZE TABLE wide")

	step.Store(int64(time.Second))
	_, err := s.Execute("SELECT * FROM wide WHERE score > 40")
	if !errors.Is(err, ErrStatementTimeout) {
		t.Fatalf("want ErrStatementTimeout from parallel scan, got %v", err)
	}

	step.Store(0)
	res := mustExec(t, s, "SELECT * FROM wide WHERE id = 30")
	if len(res.Rows) != 1 {
		t.Fatalf("post-timeout select rows = %d, want 1", len(res.Rows))
	}
	res = mustExec(t, s, "SELECT COUNT(*) FROM wide")
	if res.Rows[0][0].Int != 600 {
		t.Fatalf("post-timeout count = %d, want 600", res.Rows[0][0].Int)
	}
}
