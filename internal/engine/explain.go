package engine

import (
	"fmt"
	"strings"

	"snapdb/internal/perfschema"
	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
)

// execExplain renders the execution plan of the wrapped statement
// without running it: the statement is lowered and templated through
// the same two-stage planner execution uses, and the operator tree is
// printed one node per row, indented by depth, each leaf naming its
// access path. Planning errors (unknown columns, bad aggregates)
// surface immediately — EXPLAIN never touches a page, so there is no
// scan to sequence them after.
func (e *Engine) execExplain(st *sqlparse.Explain) (*Result, error) {
	var (
		pp     *physicalPlan
		header string
	)
	switch inner := st.Stmt.(type) {
	case *sqlparse.Select:
		if isSystemTable(inner.Table) {
			return nil, fmt.Errorf("engine: cannot EXPLAIN system table %q", inner.Table)
		}
		t, err := e.lookupTable(inner.Table)
		if err != nil {
			return nil, err
		}
		pp = e.buildSelectPlan(t, inner)
	case *sqlparse.Update:
		t, err := e.lookupTable(inner.Table)
		if err != nil {
			return nil, err
		}
		pp = e.buildUpdatePlan(t, inner)
		header = "Update: " + t.Name
	case *sqlparse.Delete:
		t, err := e.lookupTable(inner.Table)
		if err != nil {
			return nil, err
		}
		pp = e.buildDeletePlan(t, inner)
		header = "Delete: " + t.Name
	default:
		return nil, fmt.Errorf("engine: EXPLAIN supports SELECT, UPDATE, and DELETE, not %s", st.Stmt.SQL())
	}
	if pp.whereErr != nil {
		return nil, pp.whereErr
	}
	if pp.deferredErr != nil {
		return nil, pp.deferredErr
	}
	// Instantiate (without a fetch counter) purely to walk the tree
	// shape; the operators are never opened, so nothing is fetched.
	pi := pp.instantiate(nil)
	res := &Result{Columns: []string{"EXPLAIN"}, AccessPath: pp.path}
	base := 0
	if header != "" {
		res.Rows = append(res.Rows, storage.Record{sqlparse.StrValue("-> " + header)})
		base = 1
	}
	for _, n := range pi.nodes {
		line := strings.Repeat("  ", n.depth+base) + "-> " + n.op.Describe()
		if n.op == pi.leaf {
			// The scan leaf carries the cost model's verdict. EXPLAIN
			// always plans fresh, so these reflect current statistics.
			line += fmt.Sprintf("  (est_rows=%d est_cost=%.2f)", pp.estRows, pp.estCost)
		}
		res.Rows = append(res.Rows, storage.Record{sqlparse.StrValue(line)})
	}
	return res, nil
}

// analyzeLines renders the per-operator counters of an executed plan:
// one row per operator, indented by tree depth (below the header, when
// one is given), annotated with the same counters events_stages_history
// records. The scan-leaf line (matched by its operator description)
// additionally carries the planner's estimate next to the actual
// count — the estimated-vs-actual comparison EXPLAIN ANALYZE exists
// for.
func analyzeLines(header string, stages []perfschema.StageEvent, scanDesc string, estRows int64, estCost float64) []storage.Record {
	base := 0
	rows := make([]storage.Record, 0, len(stages)+1)
	if header != "" {
		rows = append(rows, storage.Record{sqlparse.StrValue(header)})
		base = 1
	}
	for _, ev := range stages {
		line := fmt.Sprintf("%s-> %s (examined=%d returned=%d fetches=%d)",
			strings.Repeat("  ", ev.Depth+base), ev.Operator,
			ev.RowsExamined, ev.RowsReturned, ev.PoolFetches)
		if scanDesc != "" && ev.Operator == scanDesc {
			line += fmt.Sprintf("  (est_rows=%d est_cost=%.2f actual_rows=%d)",
				estRows, estCost, ev.RowsReturned)
		}
		rows = append(rows, storage.Record{sqlparse.StrValue(line)})
	}
	return rows
}

// execExplainAnalyze executes the wrapped statement and renders its
// operator tree annotated with the per-operator runtime counters. It
// takes the same locks the bare statement would (shared for SELECT,
// exclusive for UPDATE/DELETE) because the statement really runs:
// pages are fetched, mutations apply, the binlog and WAL record them.
// The query cache is bypassed in both directions — a cached result
// would have no counters to show, and caching the rendered tree under
// the EXPLAIN ANALYZE text would be useless — so the counters are
// always from a genuine execution.
func (e *Engine) execExplainAnalyze(s *Session, st *sqlparse.Explain, ts int64) (*Result, error) {
	switch inner := st.Stmt.(type) {
	case *sqlparse.Select:
		if isSystemTable(inner.Table) {
			return nil, fmt.Errorf("engine: cannot EXPLAIN ANALYZE system table %q", inner.Table)
		}
		if e.versions != nil {
			// MVCC reads take no table stripe — only the read latch,
			// inside the MVCC variant.
			return e.execExplainAnalyzeSelectMVCC(s, inner)
		}
		mu := e.locks.shared(inner.Table)
		defer mu.RUnlock()
		e.simulateIO()
		return e.execExplainAnalyzeSelect(s, inner)
	case *sqlparse.Update:
		mu := e.locks.exclusive(inner.Table)
		defer mu.Unlock()
		e.simulateIO()
		res, err := e.execUpdate(s, inner, nil, inner.SQL(), ts)
		if err != nil {
			return nil, err
		}
		return analyzeMutateResult("Update: "+inner.Table, res), nil
	case *sqlparse.Delete:
		mu := e.locks.exclusive(inner.Table)
		defer mu.Unlock()
		e.simulateIO()
		res, err := e.execDelete(s, inner, nil, inner.SQL(), ts)
		if err != nil {
			return nil, err
		}
		return analyzeMutateResult("Delete: "+inner.Table, res), nil
	default:
		return nil, fmt.Errorf("engine: EXPLAIN ANALYZE supports SELECT, UPDATE, and DELETE, not %s", st.Stmt.SQL())
	}
}

// execExplainAnalyzeSelect plans, executes, and renders a SELECT. The
// result rows are discarded — the client gets the annotated tree, as
// in MySQL — but the execution is complete: every page the bare SELECT
// would fetch is fetched, in the same order.
func (e *Engine) execExplainAnalyzeSelect(s *Session, st *sqlparse.Select) (*Result, error) {
	t, err := e.lookupTable(st.Table)
	if err != nil {
		return nil, err
	}
	pp := e.buildSelectPlan(t, st)
	if pp.whereErr != nil {
		return nil, pp.whereErr
	}
	pi := pp.instantiate(e.fc)
	pi.armDeadline(s.deadlineCheck())
	if _, err := pi.drain(); err != nil {
		return nil, err
	}
	if pp.deferredErr != nil {
		return nil, pp.deferredErr
	}
	stages := pi.stages()
	return &Result{
		Columns:      []string{"EXPLAIN"},
		Rows:         analyzeLines("", stages, pi.leaf.Describe(), pp.estRows, pp.estCost),
		RowsExamined: pi.examined(),
		AccessPath:   pp.path,
		stages:       stages,
	}, nil
}

// execExplainAnalyzeSelectMVCC is the snapshot-isolation twin of
// execExplainAnalyzeSelect: same fresh planning and annotated-tree
// rendering, but executed under the table read latch with the
// statement's read view armed on the leaves, exactly as the bare
// MVCC SELECT would run (the query cache is bypassed either way).
func (e *Engine) execExplainAnalyzeSelectMVCC(s *Session, st *sqlparse.Select) (*Result, error) {
	t, err := e.lookupTable(st.Table)
	if err != nil {
		return nil, err
	}
	e.simulateIO()
	t.latch.RLock()
	defer t.latch.RUnlock()
	view, release := e.selectView(s, t)
	if release != nil {
		defer release()
	}
	var vf *versionFilter
	if view != nil {
		vf = e.versions.filterFor(t, view)
	}
	pp := e.buildSelectPlan(t, st)
	if pp.whereErr != nil {
		return nil, pp.whereErr
	}
	pi := pp.instantiateOpts(e.fc, vf != nil)
	pi.armDeadline(s.deadlineCheck())
	pi.armVisibility(pp, vf)
	if _, err := pi.drain(); err != nil {
		return nil, err
	}
	if pp.deferredErr != nil {
		return nil, pp.deferredErr
	}
	stages := pi.stages()
	return &Result{
		Columns:      []string{"EXPLAIN"},
		Rows:         analyzeLines("", stages, pi.leaf.Describe(), pp.estRows, pp.estCost),
		RowsExamined: pi.examined(),
		AccessPath:   pp.path,
		stages:       stages,
	}, nil
}

// analyzeMutateResult wraps an executed UPDATE/DELETE result into the
// rendered-tree form, keeping the inner statement's counters (and its
// stage events, which executeWith records under the EXPLAIN ANALYZE
// statement's digest).
func analyzeMutateResult(header string, res *Result) *Result {
	header = fmt.Sprintf("-> %s (affected=%d)", header, res.RowsAffected)
	return &Result{
		Columns:      []string{"EXPLAIN"},
		Rows:         analyzeLines(header, res.stages, res.scanDesc, res.estRows, res.estCost),
		RowsAffected: res.RowsAffected,
		RowsExamined: res.RowsExamined,
		stages:       res.stages,
	}
}
