package engine

import (
	"fmt"
	"strings"

	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
)

// execExplain renders the execution plan of the wrapped statement
// without running it: the statement is lowered and templated through
// the same two-stage planner execution uses, and the operator tree is
// printed one node per row, indented by depth, each leaf naming its
// access path. Planning errors (unknown columns, bad aggregates)
// surface immediately — EXPLAIN never touches a page, so there is no
// scan to sequence them after.
func (e *Engine) execExplain(st *sqlparse.Explain) (*Result, error) {
	var (
		pp     *physicalPlan
		header string
	)
	switch inner := st.Stmt.(type) {
	case *sqlparse.Select:
		if isSystemTable(inner.Table) {
			return nil, fmt.Errorf("engine: cannot EXPLAIN system table %q", inner.Table)
		}
		t, err := e.lookupTable(inner.Table)
		if err != nil {
			return nil, err
		}
		pp = e.buildSelectPlan(t, inner)
	case *sqlparse.Update:
		t, err := e.lookupTable(inner.Table)
		if err != nil {
			return nil, err
		}
		pp = e.buildUpdatePlan(t, inner)
		header = "Update: " + t.Name
	case *sqlparse.Delete:
		t, err := e.lookupTable(inner.Table)
		if err != nil {
			return nil, err
		}
		pp = e.buildDeletePlan(t, inner)
		header = "Delete: " + t.Name
	default:
		return nil, fmt.Errorf("engine: EXPLAIN supports SELECT, UPDATE, and DELETE, not %s", st.Stmt.SQL())
	}
	if pp.whereErr != nil {
		return nil, pp.whereErr
	}
	if pp.deferredErr != nil {
		return nil, pp.deferredErr
	}
	// Instantiate (without a fetch counter) purely to walk the tree
	// shape; the operators are never opened, so nothing is fetched.
	pi := pp.instantiate(nil)
	res := &Result{Columns: []string{"EXPLAIN"}, AccessPath: pp.path}
	base := 0
	if header != "" {
		res.Rows = append(res.Rows, storage.Record{sqlparse.StrValue("-> " + header)})
		base = 1
	}
	for _, n := range pi.nodes {
		line := strings.Repeat("  ", n.depth+base) + "-> " + n.op.Describe()
		res.Rows = append(res.Rows, storage.Record{sqlparse.StrValue(line)})
	}
	return res, nil
}
