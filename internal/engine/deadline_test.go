package engine

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// timeoutEngine returns an engine with StatementTimeout set and a
// manually stepped ExecClock: each ExecClock call advances by *step, so
// a test flips *step from zero to something huge to make the running
// statement blow its deadline at the first scan-boundary check.
func timeoutEngine(t testing.TB, timeout time.Duration) (*Engine, *Session, *time.Duration) {
	t.Helper()
	cfg := Defaults()
	cfg.StatementTimeout = timeout
	e, _ := newEngine(t, cfg)
	base := time.Unix(0, 0)
	var now time.Time = base
	step := new(time.Duration)
	e.ExecClock = func() time.Time {
		now = now.Add(*step)
		return now
	}
	s := e.Connect("app")
	return e, s, step
}

func TestStatementTimeoutReturnsTypedError(t *testing.T) {
	_, s, step := timeoutEngine(t, 50*time.Millisecond)
	setupCustomers(t, s, 200) // > deadlineCheckInterval rows

	*step = time.Second
	_, err := s.Execute("SELECT name FROM customers WHERE state = 'CA'")
	if !errors.Is(err, ErrStatementTimeout) {
		t.Fatalf("want ErrStatementTimeout, got %v", err)
	}

	// The session stays usable once time behaves again.
	*step = 0
	res := mustExec(t, s, "SELECT name FROM customers WHERE id = 3")
	if len(res.Rows) != 1 {
		t.Fatalf("post-timeout select rows = %d", len(res.Rows))
	}
}

// TestStatementTimeoutAbortsUpdateBeforeMutation checks the timeout
// fires in the scan half: a timed-out UPDATE leaves every row, the
// binlog, and the row count exactly as they were.
func TestStatementTimeoutAbortsUpdateBeforeMutation(t *testing.T) {
	e, s, step := timeoutEngine(t, 50*time.Millisecond)
	setupCustomers(t, s, 200)
	binlogBefore := len(e.Binlog().Events())

	*step = time.Second
	_, err := s.Execute("UPDATE customers SET age = 99 WHERE state = 'CA'")
	if !errors.Is(err, ErrStatementTimeout) {
		t.Fatalf("want ErrStatementTimeout, got %v", err)
	}

	*step = 0
	res := mustExec(t, s, "SELECT COUNT(*) FROM customers WHERE age = 99")
	if got := res.Rows[0][0].Int; got != 0 {
		t.Fatalf("timed-out UPDATE mutated %d rows", got)
	}
	if n := len(e.Binlog().Events()); n != binlogBefore {
		t.Fatalf("timed-out UPDATE emitted %d binlog events", n-binlogBefore)
	}
}

func TestStatementTimeoutAbortsDelete(t *testing.T) {
	_, s, step := timeoutEngine(t, 50*time.Millisecond)
	setupCustomers(t, s, 200)

	*step = time.Second
	_, err := s.Execute("DELETE FROM customers WHERE state = 'CA'")
	if !errors.Is(err, ErrStatementTimeout) {
		t.Fatalf("want ErrStatementTimeout, got %v", err)
	}

	*step = 0
	res := mustExec(t, s, "SELECT COUNT(*) FROM customers")
	if got := res.Rows[0][0].Int; got != 200 {
		t.Fatalf("timed-out DELETE removed rows: count = %d", got)
	}
}

// TestNoTimeoutLeavesCheckerUnarmed pins the fast path: with the
// default zero timeout the session never builds a deadline check, so
// the scan leaves run the exact pre-deadline code path (the forensic
// fetch-sequence guarantee rides on this).
func TestNoTimeoutLeavesCheckerUnarmed(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	setupCustomers(t, s, 10)
	mustExec(t, s, "SELECT * FROM customers")
	if dc := s.deadlineCheck(); dc != nil {
		t.Fatal("deadline check armed with StatementTimeout=0")
	}
}

// TestGenerousTimeoutDoesNotPerturbResults runs a mixed workload under
// a huge timeout and checks results match a no-timeout engine —
// including buffer-pool fetch counts, which must be identical because
// the deadline check reads a clock but never touches a page.
func TestGenerousTimeoutDoesNotPerturbResults(t *testing.T) {
	cfgT := Defaults()
	cfgT.StatementTimeout = time.Hour
	eT, _ := newEngine(t, cfgT)
	eP, _ := newEngine(t, Defaults())
	sT := eT.Connect("app")
	sP := eP.Connect("app")
	setupCustomers(t, sT, 150)
	setupCustomers(t, sP, 150)

	queries := []string{
		"SELECT * FROM customers WHERE state = 'NY'",
		"SELECT name FROM customers WHERE id >= 10 AND id <= 90",
		"UPDATE customers SET age = 33 WHERE id = 17",
		"DELETE FROM customers WHERE id = 140",
		"SELECT COUNT(*) FROM customers",
	}
	for _, q := range queries {
		rT, errT := sT.Execute(q)
		rP, errP := sP.Execute(q)
		if (errT == nil) != (errP == nil) {
			t.Fatalf("%q: err mismatch %v vs %v", q, errT, errP)
		}
		if errT != nil {
			continue
		}
		if fmt.Sprint(rT.Rows) != fmt.Sprint(rP.Rows) || rT.RowsExamined != rP.RowsExamined {
			t.Fatalf("%q: result diverged under generous timeout", q)
		}
	}
	if fT, fP := eT.BufferPool().FetchCount(), eP.BufferPool().FetchCount(); fT != fP {
		t.Fatalf("fetch counts diverged: %d with timeout vs %d without", fT, fP)
	}
}
