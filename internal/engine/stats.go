package engine

import (
	"fmt"
	"sync"

	"snapdb/internal/binlog"
	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
)

// Planner statistics. ANALYZE TABLE scans the clustered tree once and
// records, per column the planner can use (the INT primary key and
// every secondary-index column), a histogram-lite summary: distinct
// value count plus min/max bounds for INT columns. DML afterwards
// keeps the summaries honest the cheap way — inserts and updates widen
// the bounds, the row counter (Table.rows, which predates this file)
// tracks cardinality live — and a large drift between the live row
// count and the count ANALYZE saw bumps the plan-cache epoch so cached
// access paths re-cost instead of serving a decision made against a
// table that has since doubled or halved.
//
// Everything here is advisory: the cost model reads it, correctness
// never does. A table that was never analyzed plans with default
// selectivities (see physical.go), exactly as before this file
// existed.

// colStats summarizes one column.
type colStats struct {
	Distinct   int64 // distinct values at last ANALYZE
	HaveMinMax bool  // Min/Max valid (INT columns only)
	Min, Max   int64 // value bounds, widened by DML after ANALYZE
}

// tableStats is the per-table container. The mutex is private to the
// stats — DML paths touch it outside any engine lock, and planning
// reads it under the catalog snapshot — so it must never be held
// across calls that take other locks.
type tableStats struct {
	mu         sync.Mutex
	analyzed   bool
	analyzedAt int64            // engine clock at last ANALYZE
	baseline   int64            // row count ANALYZE saw (drift reference)
	cols       map[int]colStats // by column index
}

// statsFor returns the column's summary and whether the table has been
// analyzed at all. Cheap enough for the planning path: one mutex, one
// map lookup.
func (t *Table) statsFor(colIdx int) (cs colStats, analyzed bool) {
	t.stats.mu.Lock()
	defer t.stats.mu.Unlock()
	if !t.stats.analyzed {
		return colStats{}, false
	}
	return t.stats.cols[colIdx], true
}

// setStats installs a freshly computed summary set (ANALYZE, or
// checkpoint restore).
func (t *Table) setStats(cols map[int]colStats, at, rows int64) {
	t.stats.mu.Lock()
	defer t.stats.mu.Unlock()
	t.stats.analyzed = true
	t.stats.analyzedAt = at
	t.stats.baseline = rows
	t.stats.cols = cols
}

// statsNoteInsert widens the bounds of every tracked INT column to
// cover the new row. Distinct counts are not maintained incrementally
// — that is what re-running ANALYZE is for — but bounds must be,
// because a range estimate against stale bounds would clamp new keys
// out of the estimate entirely.
func (t *Table) statsNoteInsert(row []sqlparse.Value) {
	t.stats.mu.Lock()
	defer t.stats.mu.Unlock()
	if !t.stats.analyzed {
		return
	}
	for idx, cs := range t.stats.cols {
		if !cs.HaveMinMax || idx >= len(row) || !row[idx].IsInt {
			continue
		}
		v := row[idx].Int
		if v < cs.Min || v > cs.Max {
			if v < cs.Min {
				cs.Min = v
			}
			if v > cs.Max {
				cs.Max = v
			}
			t.stats.cols[idx] = cs
		}
	}
}

// statsNoteUpdate widens one column's bounds for an updated value.
func (t *Table) statsNoteUpdate(colIdx int, v sqlparse.Value) {
	if !v.IsInt {
		return
	}
	t.stats.mu.Lock()
	defer t.stats.mu.Unlock()
	if !t.stats.analyzed {
		return
	}
	cs, ok := t.stats.cols[colIdx]
	if !ok || !cs.HaveMinMax {
		return
	}
	if v.Int < cs.Min || v.Int > cs.Max {
		if v.Int < cs.Min {
			cs.Min = v.Int
		}
		if v.Int > cs.Max {
			cs.Max = v.Int
		}
		t.stats.cols[colIdx] = cs
	}
}

// statsSnapshot copies the summaries out for information_schema and
// checkpointing.
func (t *Table) statsSnapshot() (analyzed bool, at, baseline int64, cols map[int]colStats) {
	t.stats.mu.Lock()
	defer t.stats.mu.Unlock()
	if !t.stats.analyzed {
		return false, 0, 0, nil
	}
	cols = make(map[int]colStats, len(t.stats.cols))
	for k, v := range t.stats.cols {
		cols[k] = v
	}
	return true, t.stats.analyzedAt, t.stats.baseline, cols
}

// maybeStatsDrift checks whether the live row count has drifted far
// (2x either way) from what ANALYZE saw. If so, the baseline resets to
// the live count and every cached plan is invalidated: an access path
// costed against the old cardinality may no longer be the cheap one.
// Called on the DML paths after the row counter moves; does nothing on
// never-analyzed tables.
func (e *Engine) maybeStatsDrift(t *Table) {
	live := t.rows.Load()
	t.stats.mu.Lock()
	drifted := t.stats.analyzed &&
		(live > 2*t.stats.baseline || 2*live < t.stats.baseline)
	if drifted {
		t.stats.baseline = live
	}
	t.stats.mu.Unlock()
	if drifted && e.plans != nil {
		e.plans.bumpEpoch()
	}
}

// statCols returns the column indexes ANALYZE summarizes: the primary
// key plus every secondary-index column, deduplicated, in ascending
// order (map iteration is not ordered; callers sort for determinism
// where it matters).
func (t *Table) statCols() map[int]bool {
	cols := map[int]bool{t.PKIndex: true}
	for _, ix := range t.Indexes {
		cols[ix.colIdx] = true
	}
	return cols
}

// execAnalyzeTable is the ANALYZE TABLE statement: one clustered scan
// computing distinct counts and INT bounds for every indexed column,
// installed atomically, followed by a plan-cache epoch bump (cached
// plans were costed against the old statistics) and a binlog record
// (replicas must re-cost too — ANALYZE is a replicated statement in
// MySQL for the same reason).
func (e *Engine) execAnalyzeTable(s *Session, st *sqlparse.AnalyzeTable, query string, ts int64) (*Result, error) {
	t, err := e.lookupTable(st.Table)
	if err != nil {
		return nil, err
	}
	cols := t.statCols()
	distinct := make(map[int]map[sqlparse.Value]struct{}, len(cols))
	summaries := make(map[int]colStats, len(cols))
	for idx := range cols {
		distinct[idx] = make(map[sqlparse.Value]struct{})
	}
	var rows int64
	scanErr := t.Tree.Scan(func(row storage.Record) bool {
		rows++
		for idx := range cols {
			if idx >= len(row) {
				continue
			}
			v := row[idx]
			distinct[idx][v] = struct{}{}
			if v.IsInt {
				cs, seen := summaries[idx]
				if !seen || !cs.HaveMinMax {
					cs = colStats{HaveMinMax: true, Min: v.Int, Max: v.Int}
				} else {
					if v.Int < cs.Min {
						cs.Min = v.Int
					}
					if v.Int > cs.Max {
						cs.Max = v.Int
					}
				}
				summaries[idx] = cs
			}
		}
		return true
	})
	if scanErr != nil {
		return nil, fmt.Errorf("engine: analyze scan: %w", scanErr)
	}
	for idx := range cols {
		cs := summaries[idx]
		cs.Distinct = int64(len(distinct[idx]))
		summaries[idx] = cs
	}
	t.setStats(summaries, ts, rows)
	t.rows.Store(rows) // the scan just counted the truth; resync the hint
	// Cached plans hold access paths chosen under the old statistics.
	if e.plans != nil {
		e.plans.bumpEpoch()
	}
	if err := s.emitBinlog(e, binlog.Event{Timestamp: ts, Statement: query}); err != nil {
		return nil, err
	}
	res := &Result{
		Columns: []string{"table", "op", "status"},
		Rows: []storage.Record{{
			{Str: t.Name},
			{Str: "analyze"},
			{Str: fmt.Sprintf("OK rows=%d cols=%d", rows, len(summaries))},
		}},
	}
	return res, nil
}
