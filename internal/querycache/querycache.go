// Package querycache implements the engine's internal query cache: a
// map from exact SELECT text to its result set, invalidated by writes
// to the underlying table. MySQL's query cache works the same way and,
// as §5 of the paper notes, it is strictly internal to the process —
// invisible to SQL injection but fully visible to a whole-system
// memory snapshot, complete with query texts and result rows.
package querycache

import (
	"container/list"
	"sync"

	"snapdb/internal/storage"
)

// Entry is one cached query with its result.
type Entry struct {
	Query  string
	Table  string
	Result []storage.Record
}

// Cache is an LRU query cache.
type Cache struct {
	mu       sync.Mutex
	Enabled  bool
	capacity int
	order    *list.List // front = most recent; values are *Entry
	byQuery  map[string]*list.Element

	hits, misses, invalidations uint64
}

// DefaultCapacity is the default entry capacity.
const DefaultCapacity = 1024

// New creates an enabled cache with the given entry capacity.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		Enabled:  true,
		capacity: capacity,
		order:    list.New(),
		byQuery:  make(map[string]*list.Element),
	}
}

// Get returns the cached result for the exact query text.
func (c *Cache) Get(query string) ([]storage.Record, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.Enabled {
		return nil, false
	}
	el, ok := c.byQuery[query]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*Entry).Result, true
}

// Put stores a query result.
func (c *Cache) Put(query, table string, result []storage.Record) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.Enabled {
		return
	}
	if el, ok := c.byQuery[query]; ok {
		el.Value.(*Entry).Result = result
		c.order.MoveToFront(el)
		return
	}
	c.byQuery[query] = c.order.PushFront(&Entry{Query: query, Table: table, Result: result})
	if c.order.Len() > c.capacity {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.byQuery, back.Value.(*Entry).Query)
	}
}

// InvalidateTable drops every entry whose query read the given table.
func (c *Cache) InvalidateTable(table string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		if el.Value.(*Entry).Table == table {
			c.order.Remove(el)
			delete(c.byQuery, el.Value.(*Entry).Query)
			c.invalidations++
		}
		el = next
	}
}

// Entries returns the cached entries, most recent first. This is what a
// memory snapshot of the process reveals.
func (c *Cache) Entries() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*Entry)
		out = append(out, Entry{Query: e.Query, Table: e.Table, Result: e.Result})
	}
	return out
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats reports hit/miss/invalidation counters.
func (c *Cache) Stats() (hits, misses, invalidations uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.invalidations
}
