package querycache

import (
	"fmt"
	"testing"

	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
)

func result(vals ...int64) []storage.Record {
	out := make([]storage.Record, len(vals))
	for i, v := range vals {
		out[i] = storage.Record{sqlparse.IntValue(v)}
	}
	return out
}

func TestPutGet(t *testing.T) {
	c := New(8)
	c.Put("SELECT * FROM t WHERE a = 1", "t", result(1, 2))
	got, ok := c.Get("SELECT * FROM t WHERE a = 1")
	if !ok || len(got) != 2 {
		t.Fatalf("Get: ok=%v len=%d", ok, len(got))
	}
	if _, ok := c.Get("SELECT * FROM t WHERE a = 2"); ok {
		t.Error("different literal hit the cache (cache must be exact-text keyed)")
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("hits=%d misses=%d", hits, misses)
	}
}

func TestInvalidateTable(t *testing.T) {
	c := New(8)
	c.Put("SELECT * FROM a", "a", result(1))
	c.Put("SELECT * FROM b", "b", result(2))
	c.InvalidateTable("a")
	if _, ok := c.Get("SELECT * FROM a"); ok {
		t.Error("invalidated entry still cached")
	}
	if _, ok := c.Get("SELECT * FROM b"); !ok {
		t.Error("unrelated entry invalidated")
	}
	if _, _, inv := c.Stats(); inv != 1 {
		t.Errorf("invalidations = %d", inv)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Put("q1", "t", result(1))
	c.Put("q2", "t", result(2))
	if _, ok := c.Get("q1"); !ok {
		t.Fatal("q1 missing")
	}
	c.Put("q3", "t", result(3)) // evicts q2 (least recently used)
	if _, ok := c.Get("q2"); ok {
		t.Error("LRU entry not evicted")
	}
	if _, ok := c.Get("q1"); !ok {
		t.Error("recently used entry evicted")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestDisabled(t *testing.T) {
	c := New(8)
	c.Enabled = false
	c.Put("q", "t", result(1))
	if _, ok := c.Get("q"); ok {
		t.Error("disabled cache returned a hit")
	}
	if c.Len() != 0 {
		t.Error("disabled cache stored an entry")
	}
}

func TestPutOverwrites(t *testing.T) {
	c := New(8)
	c.Put("q", "t", result(1))
	c.Put("q", "t", result(1, 2, 3))
	got, ok := c.Get("q")
	if !ok || len(got) != 3 {
		t.Errorf("overwrite: ok=%v len=%d", ok, len(got))
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d after overwrite", c.Len())
	}
}

func TestEntriesExposeQueryText(t *testing.T) {
	c := New(8)
	secret := "SELECT * FROM patients WHERE diagnosis = 'hiv'"
	c.Put(secret, "patients", result(12))
	entries := c.Entries()
	if len(entries) != 1 || entries[0].Query != secret {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[0].Result[0][0].Int != 12 {
		t.Error("result rows not exposed")
	}
}

func TestEntriesOrderMostRecentFirst(t *testing.T) {
	c := New(8)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("q%d", i), "t", result(int64(i)))
	}
	_, _ = c.Get("q0")
	entries := c.Entries()
	if entries[0].Query != "q0" {
		t.Errorf("most recent = %q", entries[0].Query)
	}
}

func TestZeroCapacityUsesDefault(t *testing.T) {
	c := New(0)
	for i := 0; i < DefaultCapacity+10; i++ {
		c.Put(fmt.Sprintf("q%d", i), "t", nil)
	}
	if c.Len() != DefaultCapacity {
		t.Errorf("Len = %d, want %d", c.Len(), DefaultCapacity)
	}
}

func BenchmarkGetHit(b *testing.B) {
	c := New(64)
	c.Put("q", "t", result(1, 2, 3))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get("q"); !ok {
			b.Fatal("miss")
		}
	}
}
