module snapdb

go 1.22
