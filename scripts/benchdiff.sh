#!/usr/bin/env bash
# Compares a bench.sh result file against the checked-in baseline and
# fails (exit 1) if any shared benchmark regressed more than
# THRESHOLD_PCT in ns/op.
#
# Usage: scripts/benchdiff.sh [new.json] [baseline.json]
#
#   new.json       defaults to the newest BENCH_*.json in the worktree
#   baseline.json  defaults to the newest BENCH_*.json committed at
#                  HEAD, read via `git show` — so a bench.sh run that
#                  overwrote today's file still diffs against the
#                  committed bytes, not its own output
#
# THRESHOLD_PCT (default 20) sets the allowed ns/op growth.
set -euo pipefail
cd "$(dirname "$0")/.."

new="${1:-$(ls BENCH_*.json 2>/dev/null | sort | tail -1)}"
if [ -z "$new" ] || [ ! -f "$new" ]; then
    echo "benchdiff: no BENCH_*.json in the worktree (run scripts/bench.sh first)" >&2
    exit 2
fi

base_tmp=""
if [ $# -ge 2 ]; then
    base="$2"
else
    base_name="$(git ls-tree -r --name-only HEAD | grep '^BENCH_.*\.json$' | sort | tail -1 || true)"
    if [ -z "$base_name" ]; then
        echo "benchdiff: no committed BENCH_*.json baseline at HEAD" >&2
        exit 2
    fi
    base_tmp="$(mktemp)"
    trap 'rm -f "$base_tmp"' EXIT
    git show "HEAD:$base_name" > "$base_tmp"
    base="$base_tmp"
    echo "benchdiff: baseline HEAD:$base_name vs $new"
fi

THRESHOLD_PCT="${THRESHOLD_PCT:-20}" python3 - "$base" "$new" <<'PY'
import json, os, sys

threshold = float(os.environ["THRESHOLD_PCT"])
base_file, new_file = sys.argv[1], sys.argv[2]
base = {b["name"]: b for b in json.load(open(base_file))}
new = {b["name"]: b for b in json.load(open(new_file))}

shared = sorted(set(base) & set(new))
if not shared:
    print("benchdiff: no shared benchmarks between baseline and new run", file=sys.stderr)
    sys.exit(2)

failed = []
for name in shared:
    b, n = base[name]["ns_per_op"], new[name]["ns_per_op"]
    if b <= 0:
        continue
    pct = 100.0 * (n - b) / b
    flag = ""
    if pct > threshold:
        flag = "  <-- REGRESSION"
        failed.append(name)
    print(f"{name:<55} {b:>14.1f} -> {n:>14.1f} ns/op  {pct:+7.1f}%{flag}")

only_base = sorted(set(base) - set(new))
if only_base:
    print(f"benchdiff: {len(only_base)} baseline benchmark(s) missing from new run: "
          + ", ".join(only_base), file=sys.stderr)

if failed:
    print(f"benchdiff: {len(failed)} benchmark(s) regressed more than {threshold:.0f}% ns/op",
          file=sys.stderr)
    sys.exit(1)
print(f"benchdiff: OK ({len(shared)} benchmarks within {threshold:.0f}%)")
PY
