#!/usr/bin/env bash
# Runs the root benchmark harness and records the results as
# BENCH_<date>.json in the repository root: one object per benchmark
# with its name, ns/op and allocs/op (plus any custom metric the
# benchmark reports, e.g. stmts/s). Commit the file to track
# performance across PRs.
#
# Usage: scripts/bench.sh [go-bench-regex]   (default: all benchmarks)
set -euo pipefail
cd "$(dirname "$0")/.."

pattern="${1:-.}"
out="BENCH_$(date +%Y-%m-%d).json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$pattern" -benchmem . ./internal/engine/exec | tee "$raw"

awk '
BEGIN { print "[" ; first = 1 }
/^Benchmark/ {
    name = $1
    ns = ""; allocs = ""; extra = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op")       ns = $(i-1)
        if ($(i) == "allocs/op")   allocs = $(i-1)
        if ($(i) ~ /\// && $(i) != "ns/op" && $(i) != "B/op" && $(i) != "allocs/op")
            extra = sprintf("%s, \"%s\": %s", extra, $(i), $(i-1))
    }
    if (ns == "") next
    if (!first) printf(",\n")
    first = 0
    printf("  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s%s}", name, ns, allocs, extra)
}
END { print "\n]" }
' "$raw" > "$out"

echo "wrote $out"

# Show the drift against the committed baseline. Non-fatal here — this
# script's job is refreshing the baseline; scripts/benchdiff.sh run
# directly is the failing gate.
if ! scripts/benchdiff.sh "$out"; then
    echo "bench.sh: WARNING: regression against committed baseline (see above)" >&2
fi
