#!/usr/bin/env bash
# CI gate: vet, build, full test suite, then the race detector over
# everything. The -race step is load-bearing — the engine executes
# concurrent sessions over striped table locks and group commit, and
# the detector is what holds that machinery to its claims.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "CI OK"
