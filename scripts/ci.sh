#!/usr/bin/env bash
# CI gate: vet, build, full test suite, then the race detector over
# everything. The -race step is load-bearing — the engine executes
# concurrent sessions over striped table locks and group commit, and
# the detector is what holds that machinery to its claims.
#
# After the functional gates, two robustness passes:
#   - fuzz smoke: every parser that reads crash-era bytes (WAL records,
#     binlog events, buffer-pool dumps) gets a short native-fuzz run —
#     "never panic on garbage" is re-earned on every commit, not
#     assumed from the seed corpus.
#   - crash torture seed matrix: the kill-point harness re-runs under
#     -race with extra seeds, so fault schedules differ from the
#     default test run's.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "== bench smoke =="
# One iteration of the statement-pipeline benchmarks: catches a
# benchmark that no longer compiles or errors at runtime (timing is
# meaningless at -benchtime 1x; scripts/benchdiff.sh does the timing
# comparison against the committed baseline).
go test -run '^$' -bench 'PlanCache|BatchedThroughput|SortedRead|ParallelScan|CostedPlanning|MVCCReadersVsWriter|EncryptAtRest' -benchtime 1x .
go test -run '^$' -bench 'TopN' -benchtime 1x ./internal/engine/exec

echo "== fuzz smoke =="
# One -fuzz target per invocation (a Go toolchain constraint).
fuzz() { go test "$1" -run '^$' -fuzz "$2" -fuzztime "${FUZZTIME:-5s}"; }
fuzz ./internal/wal FuzzDecodeRecord
fuzz ./internal/wal FuzzParseLog
fuzz ./internal/binlog FuzzDecodeEvent
fuzz ./internal/binlog FuzzParse
fuzz ./internal/bufpool FuzzParseDump
fuzz ./internal/bufpool FuzzDumpRoundTripBitflip
fuzz ./internal/sqlparse FuzzParseExplain
fuzz ./internal/sqlparse FuzzParseSelect
fuzz ./internal/server FuzzUnescape
fuzz ./internal/client FuzzDecodeValue

echo "== crash torture seed matrix (-race) =="
SNAPDB_TORTURE_SEEDS="${SNAPDB_TORTURE_SEEDS:-1,7,42}" \
    go test -race ./internal/engine -run 'TestCrashTorture' -count=1 -v | grep -E 'kill-points|--- (PASS|FAIL)'

echo "== encryption-at-rest smoke (-race) =="
# CryptFS stacked over the fault injector: the differential proves the
# crypto layer is observably transparent (same results, binlog, frames
# byte-for-byte after decrypt), the torture subset proves crash
# recovery through a fresh CryptFS lands on the reference digests, the
# bit-flip pass proves at-rest corruption surfaces as detected CRC
# truncation after decrypt, and E17 replays the multi-snapshot diff
# attack plus its fresh-IV ablation.
go test -race ./internal/engine -run 'TestDifferentialCryptVsPlain|TestCrashTortureEncrypted|TestCrashTortureBitFlipsEncrypted|TestRecoverEncryptedWrongKey' -count=1
go test -race ./internal/experiments -run 'TestE17SnapshotDiff' -count=1
go test -race ./internal/vfs -run 'TestCryptFS|TestFS|TestOSFS|TestWriteFileAtomic' -count=1

echo "== MVCC differential (-race) =="
# Snapshot reads vs stripe locking must be byte-identical on
# conflict-free workloads — results, binlog, general log — while the
# race detector watches the version store, read views, and inline
# purge running under real session concurrency.
go test -race ./internal/engine -run 'TestDifferentialMVCCVsLocking|TestMVCC' -count=1

echo "== network torture seed matrix (-race) =="
# The wire-level counterpart: seeded resets, partial writes, latency
# and blackholes against live connections, with exactly-once asserted
# by state-digest/binlog/general-log comparison against a fault-free
# run. Extra seeds here, like the crash matrix, so CI explores fault
# schedules the default test run does not.
SNAPDB_NETFAULT_SEEDS="${SNAPDB_NETFAULT_SEEDS:-1,7,42}" \
    go test -race ./internal/server -run 'TestNetworkTortureExactlyOnce|TestReplyLossForcesReplayResidue' -count=1 -v |
    grep -E 'retry residue|--- (PASS|FAIL)'

echo "CI OK"
